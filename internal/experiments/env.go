// Package experiments reproduces every table and figure of the paper's
// evaluation (plus the repository's own ablations). Each experiment is a
// function from a shared Env — which lazily builds and caches the three
// task pipelines — to a printable Table. The registry in registry.go maps
// experiment ids (fig6, tab1, ...) to runners; cmd/schemble and
// bench_test.go both go through it.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/rng"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// Env caches fitted pipelines and scales experiment sizes.
type Env struct {
	// Seed drives every generator in the environment.
	Seed uint64
	// Quick shrinks datasets and traces (used by tests); full size is the
	// default for benches and the CLI.
	Quick bool

	tm, vc, ir *pipeline.Artifacts
	six        *pipeline.Artifacts
}

// NewEnv builds an environment.
func NewEnv(seed uint64, quick bool) *Env { return &Env{Seed: seed, Quick: quick} }

func (e *Env) scale(full, quick int) int {
	if e.Quick {
		return quick
	}
	return full
}

// TextMatching returns the fitted bank-Q&A pipeline.
func (e *Env) TextMatching() *pipeline.Artifacts {
	if e.tm == nil {
		ds := dataset.TextMatching(dataset.Config{N: e.scale(4000, 1800), Seed: e.Seed})
		e.tm = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.TextMatchingModels(e.Seed),
			PredictorEpochs: e.scale(150, 40), Seed: e.Seed,
		})
	}
	return e.tm
}

// VehicleCounting returns the fitted detector-ensemble pipeline.
func (e *Env) VehicleCounting() *pipeline.Artifacts {
	if e.vc == nil {
		ds := dataset.VehicleCounting(dataset.Config{N: e.scale(4000, 1800), Seed: e.Seed + 1})
		e.vc = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.VehicleCountingModels(e.Seed + 1),
			PredictorEpochs: e.scale(150, 40), Seed: e.Seed + 1,
		})
	}
	return e.vc
}

// ImageRetrieval returns the fitted two-model DELG-like pipeline.
func (e *Env) ImageRetrieval() *pipeline.Artifacts {
	if e.ir == nil {
		ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
			Config:      dataset.Config{N: e.scale(1600, 700), Seed: e.Seed + 2},
			GallerySize: e.scale(1200, 400), EmbDim: 16,
		})
		e.ir = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.ImageRetrievalModels(e.Seed+2, 16),
			PredictorEpochs: e.scale(150, 40), Seed: e.Seed + 2,
		})
	}
	return e.ir
}

// SixModel returns the 6-architecture classification pipeline standing in
// for the paper's CIFAR100 study (Fig. 5, Fig. 20a).
func (e *Env) SixModel() *pipeline.Artifacts {
	if e.six == nil {
		ds := dataset.TextMatching(dataset.Config{N: e.scale(3000, 1500), Seed: e.Seed + 3})
		skills := []float64{0.70, 0.76, 0.80, 0.84, 0.87, 0.90}
		names := []string{"vgg16", "resnet18", "resnet101", "densenet121", "inceptionv3", "resnext50"}
		var models []model.Model
		for i := range skills {
			models = append(models, model.NewSynthetic(model.SyntheticConfig{
				Name: names[i], Task: dataset.Classification, Classes: 2,
				Skill: skills[i], Latency: time.Duration(30+10*i) * time.Millisecond,
				MemoryMB: 400, Kappa: 9, Seed: e.Seed + 30 + uint64(i),
			}))
		}
		e.six = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: models,
			PredictorEpochs: e.scale(80, 25), Seed: e.Seed + 3,
		})
	}
	return e.six
}

// Baseline identifies a serving policy.
type Baseline int

// The paper's six baselines plus the Schemble(t) ablation.
const (
	Original Baseline = iota
	Static
	DESel
	Gating
	SchembleEA
	Schemble
	SchembleT
)

// Baselines is the comparison set of Exp-1/Exp-2.
var Baselines = []Baseline{Original, Static, DESel, Gating, SchembleEA, Schemble}

func (b Baseline) String() string {
	switch b {
	case Original:
		return "Original"
	case Static:
		return "Static"
	case DESel:
		return "DES"
	case Gating:
		return "Gating"
	case SchembleEA:
		return "Schemble(ea)"
	case Schemble:
		return "Schemble"
	case SchembleT:
		return "Schemble(t)"
	default:
		return fmt.Sprintf("Baseline(%d)", int(b))
	}
}

// DPOverhead models the DP scheduler's own compute cost in virtual time:
// proportional to the planned window times the reward-level count 1/delta
// (the table size of Alg. 1). tickPerCell is calibrated so delta = 0.01 is
// cheap and delta = 0.001 visibly hurts, as in Fig. 21.
func DPOverhead(delta float64) func(buffered int) time.Duration {
	const tickPerCell = 350 * time.Nanosecond
	if delta <= 0 {
		delta = 0.01
	}
	levels := int(1/delta + 0.5)
	return func(buffered int) time.Duration {
		window := buffered
		if window > 16 {
			window = 16
		}
		return time.Duration(window*levels) * tickPerCell
	}
}

// runCache memoizes baseline runs within an Env (several figures slice the
// same runs differently).
type runKey struct {
	task     string
	baseline Baseline
	traceKey string
	force    bool
	delta    float64
}

var runCache = map[runKey][]metrics.Record{}

// peakRate estimates the trace's busy-period arrival rate (the 90th
// percentile of per-second arrival counts) — the load a static deployment
// must provision for, since misses concentrate in the bursts.
func peakRate(tr *trace.Trace) float64 {
	if tr.N() == 0 {
		return 1
	}
	n := int(tr.Horizon/time.Second) + 1
	counts := make([]float64, n)
	for _, a := range tr.Arrivals {
		b := int(a.At / time.Second)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	sort.Float64s(counts)
	return counts[int(0.9*float64(len(counts)-1))] + 1
}

// simCache memoizes custom-configuration runs by an explicit string key.
var simCache = map[string][]metrics.Record{}

// simRunCached runs the simulator once per (task, key), caching records.
// pool must be the sample slice the trace's SampleIdx values index.
func simRunCached(cfg sim.Config, tr *trace.Trace, a *pipeline.Artifacts, pool []*dataset.Sample, key string) []metrics.Record {
	full := a.Dataset.Name + "/" + key
	if recs, ok := simCache[full]; ok {
		return recs
	}
	recs := sim.Run(cfg, tr, pool)
	simCache[full] = recs
	return recs
}

// RunBaseline serves the trace with the given baseline over artifacts a
// and returns the per-query records. delta configures the DP quantization
// for the Schemble family (0 means 0.01).
func (e *Env) RunBaseline(a *pipeline.Artifacts, b Baseline, tr *trace.Trace, traceKey string, force bool, delta float64) []metrics.Record {
	key := runKey{a.Dataset.Name, b, traceKey, force, delta}
	if recs, ok := runCache[key]; ok {
		return recs
	}
	cfg := sim.Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Seed:     e.Seed,
	}
	switch b {
	case Original:
		cfg.Select = func(*dataset.Sample) ensemble.Subset { return a.Ensemble.FullSubset() }
	case Static:
		plan := a.StaticPlan(peakRate(tr))
		cfg.Select = plan.Select()
		cfg.Replicas = plan.Replicas
	case DESel:
		cfg.Select = a.TrainDES().Select
	case Gating:
		cfg.Select = a.TrainGating().Select
	case SchembleEA, Schemble, SchembleT:
		//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
		if delta == 0 {
			delta = 0.01
		}
		cfg.Scheduler = &core.DP{Delta: delta}
		cfg.SchedOverhead = DPOverhead(delta)
		switch b {
		case SchembleEA:
			cfg.Rewarder = a.EAProfile
			cfg.Estimator = a.EAPredictor
			cfg.ScoreDelay = a.EAPredictor.InferCost
		case SchembleT:
			cfg.Rewarder = a.Profile
			cfg.Estimator = &discrepancy.ConstantPredictor{Value: 0.5}
		default:
			cfg.Rewarder = a.Profile
			cfg.Estimator = a.Predictor
			cfg.ScoreDelay = a.Predictor.InferCost
		}
	}
	cfg.ForceProcess = force
	// All Env traces draw from the serving pool.
	recs := sim.Run(cfg, tr, a.Serve)
	runCache[key] = recs
	return recs
}

// TMHourSeconds is the one-day trace's per-hour compression used by all
// text matching experiments (segment widths must match it).
func (e *Env) TMHourSeconds() float64 { return float64(e.scale(30, 8)) }

// TMTrace returns the one-day bursty trace for the text matching task with
// the given constant deadline.
func (e *Env) TMTrace(deadline time.Duration) (*trace.Trace, string) {
	tr := trace.OneDay(trace.OneDayConfig{
		Samples:     e.TextMatching().Serve,
		Deadline:    trace.ConstantDeadline(deadline),
		HourSeconds: e.TMHourSeconds(),
		BaseRate:    0.7,
		Seed:        e.Seed + 10,
	})
	return tr, fmt.Sprintf("oneday-%v", deadline)
}

// VCTrace returns Poisson traffic with per-camera random deadlines around
// the given mean for the vehicle counting task.
func (e *Env) VCTrace(meanDeadline time.Duration) (*trace.Trace, string) {
	a := e.VehicleCounting()
	lo := meanDeadline / 2
	hi := meanDeadline + meanDeadline/2
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 35,
		N:          e.scale(6000, 1200),
		Samples:    a.Serve,
		Deadline:   trace.NewCameraDeadline(lo, hi, e.Seed+11),
		Seed:       e.Seed + 11,
	})
	return tr, fmt.Sprintf("vc-poisson-%v", meanDeadline)
}

// IRTrace returns Poisson traffic with constant deadlines for the image
// retrieval task.
func (e *Env) IRTrace(deadline time.Duration) (*trace.Trace, string) {
	a := e.ImageRetrieval()
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 16,
		N:          e.scale(4000, 900),
		Samples:    a.Serve,
		Deadline:   trace.ConstantDeadline(deadline),
		Seed:       e.Seed + 12,
	})
	return tr, fmt.Sprintf("ir-poisson-%v", deadline)
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// fms formats a millisecond value from a duration.
func fms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }

// fsec formats seconds with three decimals.
func fsec(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// fpct formats a fraction as a percentage with one decimal.
func fpct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }

// f3 formats with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// resampleByScore draws n samples from pool so their true-score
// distribution approximates the target difficulty spec (Exp-3's
// Normal/Gamma shifts): each draw samples a target score and picks the
// pool sample with the nearest score.
func resampleByScore(pool []*dataset.Sample, scores []float64, target dataset.DifficultySpec, n int, seed uint64) []*dataset.Sample {
	type entry struct {
		s     *dataset.Sample
		score float64
	}
	sorted := make([]entry, len(pool))
	for i, s := range pool {
		sorted[i] = entry{s, scores[s.ID]}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].score < sorted[b].score })
	src := rng.New(seed ^ 0x2e5a)
	out := make([]*dataset.Sample, n)
	for i := 0; i < n; i++ {
		t := target.Sample(src)
		// Binary search for the nearest score.
		lo, hi := 0, len(sorted)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid].score < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		best := lo
		if lo > 0 && t-sorted[lo-1].score < sorted[lo].score-t {
			best = lo - 1
		}
		// Jitter within a small neighbourhood for diversity.
		j := best + src.Intn(9) - 4
		if j < 0 {
			j = 0
		}
		if j >= len(sorted) {
			j = len(sorted) - 1
		}
		out[i] = sorted[j].s
	}
	return out
}

// ContendedTMTrace is Poisson traffic near the Schemble family's own
// capacity limit on text matching, where scheduling decisions (not just
// subset sizes) decide who makes deadlines. The scheduler-comparison
// experiments (Figs. 12, 19, 21) run here: on the calibrated one-day trace
// the Schemble pipeline has enough headroom that every scheduler coasts.
func (e *Env) ContendedTMTrace(deadline time.Duration) (*trace.Trace, string) {
	a := e.TextMatching()
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 55,
		N:          e.scale(6000, 1200),
		Samples:    a.Serve,
		Deadline:   trace.ConstantDeadline(deadline),
		Seed:       e.Seed + 13,
	})
	return tr, fmt.Sprintf("tm-contended-%v", deadline)
}

// lightTrace is low-rate Poisson traffic where predictor latency is a
// visible fraction of response time (used by abl-fastpath).
func lightTrace(e *Env, a *pipeline.Artifacts) *trace.Trace {
	return trace.Poisson(trace.PoissonConfig{
		RatePerSec: 4, N: e.scale(2000, 600), Samples: a.Serve,
		Deadline: trace.ConstantDeadline(400 * time.Millisecond),
		Seed:     e.Seed + 14,
	})
}

// metricsSummarize re-exports metrics.Summarize for sibling files.
func metricsSummarize(recs []metrics.Record) metrics.Summary {
	return metrics.Summarize(recs)
}

// MarshalJSON renders the table as a structured object (the CLI's -format
// json output).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// FprintCSV renders the table as CSV (header row first).
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
