package experiments

import (
	"fmt"
	"sort"
)

// Spec registers one reproducible experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(*Env) *Table
}

// All lists every experiment in paper order, then ablations.
var All = []Spec{
	{"fig1a", "One-day traffic and miss rate of the original ensemble", Fig1a},
	{"fig1b", "Base models vs ensemble performance", Fig1b},
	{"fig4a", "Discrepancy-score distributions", Fig4a},
	{"fig4b", "Per-bin subset accuracy", Fig4b},
	{"fig5", "Preference instability vs discrepancy stability", Fig5},
	{"fig6", "Text matching: accuracy/DMR vs deadline", Fig6},
	{"fig7", "Vehicle counting: accuracy/DMR vs deadline", Fig7},
	{"fig8", "Image retrieval: mAP/DMR vs deadline", Fig8},
	{"tab1", "Average accuracy and DMR across deadlines", Table1},
	{"tab2", "Forced processing: accuracy and latency", Table2},
	{"fig9", "Per-hour latency and accuracy on the one-day trace", Fig9},
	{"fig10", "Shifted difficulty distributions", Fig10},
	{"fig11", "Accuracy-latency tradeoff objective (text matching)", Fig11},
	{"fig12", "Scheduling algorithms (text matching)", Fig12},
	{"fig13", "Predictor overhead", Fig13},
	{"fig14", "Per-hour accuracy and DMR on the one-day trace", Fig14},
	{"fig15", "Tradeoff objectives (vehicle counting, image retrieval)", Fig15},
	{"fig16", "Offline runtime budgets", Fig16},
	{"fig17", "Scheduling algorithms (vehicle counting)", Fig17},
	{"fig18", "Scheduling algorithms (image retrieval)", Fig18},
	{"fig19", "Scheduling algorithms on the bursty window", Fig19},
	{"fig20a", "Marginal-reward estimation error", Fig20a},
	{"fig20b", "KNN filling robustness", Fig20b},
	{"fig21", "Quantization step delta sweep", Fig21},
	{"abl-prune", "DP Pareto pruning ablation", AblPrune},
	{"abl-buffer", "Query buffer / scheduler ablation", AblBuffer},
	{"abl-calib", "Temperature scaling ablation", AblCalib},
	{"abl-fastpath", "Fast-path dispatch for idle arrivals", AblFastPath},
	{"abl-traffic", "Traffic-model robustness", AblTraffic},
	{"abl-batch", "Batching vs per-query scheduling", AblBatch},
	{"abl-fill", "Missing-value filling ablation", AblFill},
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, len(All))
	for i, s := range All {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return ids
}

// Lookup finds an experiment by id.
func Lookup(id string) (Spec, error) {
	for _, s := range All {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
}

// Run executes one experiment by id.
func Run(e *Env, id string) (*Table, error) {
	spec, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return spec.Run(e), nil
}
