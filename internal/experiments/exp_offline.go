package experiments

import (
	"fmt"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/filling"
	"schemble/internal/gbdt"
	"schemble/internal/mathx"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/profiling"
	"schemble/internal/rng"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// Fig10 reproduces Exp-3: the difficulty distribution of the query stream
// is shifted to Normal / Gamma with varying means; accuracy and processed
// accuracy per baseline (including Schemble(t)) at a fixed 105ms deadline.
func Fig10(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:    "fig10",
		Title: "Accuracy under shifted discrepancy-score distributions (deadline 105ms)",
		Columns: []string{"distribution", "mean", "baseline",
			"Acc(%)", "processed(%)", "DMR(%)"},
	}
	show := []Baseline{Static, Gating, SchembleT, Schemble}
	means := []float64{0.2, 0.4, 0.6, 0.8}
	if e.Quick {
		means = []float64{0.3, 0.7}
	}
	kinds := []struct {
		name string
		kind dataset.DifficultyKind
	}{
		{"normal", dataset.NormalDist},
		{"gamma", dataset.GammaDist},
	}
	n := e.scale(5000, 1200)
	for _, k := range kinds {
		for _, mean := range means {
			pool := resampleByScore(a.Serve, a.TrueScores,
				dataset.DifficultySpec{Kind: k.kind, Mean: mean}, n, e.Seed+77)
			tr := trace.Poisson(trace.PoissonConfig{
				RatePerSec: 60, N: n, Samples: pool,
				Deadline: trace.ConstantDeadline(105 * time.Millisecond),
				Seed:     e.Seed + 78,
			})
			for _, b := range show {
				cfg := baselineConfig(e, a, b, tr)
				key := fmt.Sprintf("fig10/%s-%.1f/%s", k.name, mean, b)
				s := metrics.Summarize(simRunCached(cfg, tr, a, pool, key))
				t.AddRow(k.name, fmt.Sprintf("%.1f", mean), b.String(),
					fpct(s.Accuracy), fpct(s.Processed), fpct(s.DMR))
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: accuracy decreases with the mean; Schemble(t) matches Schemble only at extreme means")
	return t
}

// baselineConfig builds the sim config for a baseline without caching (for
// experiments whose traces use custom pools).
func baselineConfig(e *Env, a *pipeline.Artifacts, b Baseline, tr *trace.Trace) sim.Config {
	cfg := sim.Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Seed:     e.Seed,
	}
	switch b {
	case Original:
		cfg.Select = func(*dataset.Sample) ensemble.Subset { return a.Ensemble.FullSubset() }
	case Static:
		plan := a.StaticPlan(float64(tr.N()) / tr.Horizon.Seconds())
		cfg.Select = plan.Select()
		cfg.Replicas = plan.Replicas
	case DESel:
		cfg.Select = a.TrainDES().Select
	case Gating:
		cfg.Select = a.TrainGating().Select
	default:
		cfg.Scheduler = &core.DP{Delta: 0.01}
		cfg.SchedOverhead = DPOverhead(0.01)
		switch b {
		case SchembleEA:
			cfg.Rewarder = a.EAProfile
			cfg.Estimator = a.EAPredictor
			cfg.ScoreDelay = a.EAPredictor.InferCost
		case SchembleT:
			cfg.Rewarder = a.Profile
			cfg.Estimator = &discrepancy.ConstantPredictor{Value: 0.5}
		default:
			cfg.Rewarder = a.Profile
			cfg.Estimator = a.Predictor
			cfg.ScoreDelay = a.Predictor.InferCost
		}
	}
	return cfg
}

// Fig16 reproduces the appendix Fig. 16: offline budgeted selection. With
// no arrival dynamics, each method selects a subset per sample to maximize
// accuracy subject to an average per-query runtime budget; Schemble* uses
// predicted scores, its Oracle variant true scores, its (ea) variant
// agreement scores.
func Fig16(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:      "fig16",
		Title:   "Offline accuracy under average runtime budgets (text matching)",
		Columns: []string{"budget(ms)", "Random", "Gating", "Schemble*(ea)", "Schemble*", "Schemble*(Oracle)"},
	}
	pool := a.Serve
	budgets := []time.Duration{
		30 * time.Millisecond, 60 * time.Millisecond, 100 * time.Millisecond,
		150 * time.Millisecond, 190 * time.Millisecond,
	}
	if e.Quick {
		budgets = []time.Duration{60 * time.Millisecond, 150 * time.Millisecond}
	}

	// Per-subset cost: the summed runtime of its models (the offline
	// cumulative-runtime convention of the DES literature).
	m := a.Ensemble.M()
	subsets := ensemble.AllSubsets(m)
	cost := map[ensemble.Subset]time.Duration{}
	for _, s := range subsets {
		var c time.Duration
		for _, k := range s.Models() {
			c += a.Ensemble.Models[k].MeanLatency()
		}
		cost[s] = c
	}
	agree := func(id int, s ensemble.Subset) float64 {
		return a.Scorer.Score(a.Ensemble.Predict(a.Outs[id], s), a.Refs[id])
	}

	// greedyBudget allocates upgrades by marginal reward per marginal
	// cost until the budget is spent, starting from the cheapest subset.
	greedyBudget := func(scores []float64, budget time.Duration) float64 {
		cheapest := subsets[0]
		for _, s := range subsets {
			if cost[s] < cost[cheapest] {
				cheapest = s
			}
		}
		chosen := make([]ensemble.Subset, len(pool))
		spent := time.Duration(0)
		for i := range chosen {
			chosen[i] = cheapest
			spent += cost[cheapest]
		}
		total := budget * time.Duration(len(pool))
		// Repeatedly apply the single best upgrade across all samples.
		type upgrade struct {
			idx  int
			to   ensemble.Subset
			eff  float64
			cost time.Duration
		}
		for spent < total {
			best := upgrade{idx: -1}
			for i := range pool {
				curR := a.Profile.Reward(scores[i], chosen[i])
				for _, s := range subsets {
					dc := cost[s] - cost[chosen[i]]
					if dc <= 0 || spent+dc > total {
						continue
					}
					dr := a.Profile.Reward(scores[i], s) - curR
					if dr <= 0 {
						continue
					}
					eff := dr / dc.Seconds()
					if best.idx < 0 || eff > best.eff {
						best = upgrade{i, s, eff, dc}
					}
				}
			}
			if best.idx < 0 {
				break
			}
			chosen[best.idx] = best.to
			spent += best.cost
		}
		var acc float64
		for i, s := range pool {
			acc += agree(s.ID, chosen[i])
		}
		return acc / float64(len(pool))
	}

	// Random baseline: grow random subsets until the budget is met.
	randomBudget := func(budget time.Duration) float64 {
		src := rng.New(e.Seed + 123)
		total := budget * time.Duration(len(pool))
		spent := time.Duration(0)
		var acc float64
		for _, s := range pool {
			sub := ensemble.Single(src.Intn(m))
			for spent+cost[sub] > total && sub.Size() > 0 {
				break
			}
			for src.Bool(0.5) && sub.Size() < m {
				k := src.Intn(m)
				if !sub.Contains(k) && spent+cost[sub.With(k)] <= total {
					sub = sub.With(k)
				} else {
					break
				}
			}
			spent += cost[sub]
			if spent > total {
				break
			}
			acc += agree(s.ID, sub)
		}
		return acc / float64(len(pool))
	}

	// Gating baseline: thresholded gate subsets, with the threshold swept
	// to meet the budget.
	gate := a.TrainGating()
	gatingBudget := func(budget time.Duration) float64 {
		bestAcc := 0.0
		for _, th := range []float64{0.999, 0.99, 0.95, 0.9, 0.8} {
			gate.Threshold = th
			var acc float64
			spent := time.Duration(0)
			total := budget * time.Duration(len(pool))
			ok := true
			for _, s := range pool {
				sub := gate.Select(s)
				spent += cost[sub]
				if spent > total {
					ok = false
					break
				}
				acc += agree(s.ID, sub)
			}
			if ok {
				if a := acc / float64(len(pool)); a > bestAcc {
					bestAcc = a
				}
			}
		}
		return bestAcc
	}

	predScores := make([]float64, len(pool))
	trueScores := make([]float64, len(pool))
	eaScores := make([]float64, len(pool))
	for i, s := range pool {
		predScores[i] = a.Predictor.Predict(s)
		trueScores[i] = a.TrueScores[s.ID]
		eaScores[i] = a.EAPredictor.Predict(s)
	}

	for _, b := range budgets {
		t.AddRow(fms(b),
			fpct(randomBudget(b)),
			fpct(gatingBudget(b)),
			fpct(greedyBudget(eaScores, b)),
			fpct(greedyBudget(predScores, b)),
			fpct(greedyBudget(trueScores, b)))
	}
	t.Notes = append(t.Notes,
		"paper: Schemble* approaches its oracle and dominates; gating fails to discriminate inputs")
	return t
}

// Fig20a reproduces the appendix Fig. 20a: MSE of the marginal-reward
// estimation (Eq. 3) against measured rewards, per ensemble size.
func Fig20a(e *Env) *Table {
	a := e.SixModel()
	trainScores := make([]float64, len(a.Train))
	trainIDs := make([]int, len(a.Train))
	for i, s := range a.Train {
		trainScores[i] = a.TrueScores[s.ID]
		trainIDs[i] = s.ID
	}
	agree := func(i int, s ensemble.Subset) float64 {
		id := trainIDs[i]
		return a.Scorer.Score(a.Ensemble.Predict(a.Outs[id], s), a.Refs[id])
	}
	p := profiling.Build(profiling.Config{M: a.Ensemble.M(), Bins: 6}, trainScores, agree)
	gammas := profiling.FitGammas(p)
	est := profiling.NewEstimator(p, gammas)

	t := &Table{
		ID:      "fig20a",
		Title:   "Marginal-reward estimation MSE vs measured rewards, by subset size",
		Columns: []string{"subset size", "MSE", "pairs"},
	}
	for size := 3; size <= a.Ensemble.M(); size++ {
		var sse float64
		var count int
		for b := 0; b < p.Bins; b++ {
			for _, s := range ensemble.SubsetsOfSize(a.Ensemble.M(), size) {
				d := est.Reward(b, s) - p.RewardBin(b, s)
				sse += d * d
				count++
			}
		}
		t.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%.2e", sse/float64(count)),
			fmt.Sprintf("%d", count))
	}
	t.Notes = append(t.Notes,
		"paper: MSE below 1.6e-4 on CIFAR100; the estimate closely tracks measured accuracy")
	return t
}

// Fig20b reproduces the appendix Fig. 20b: robustness of KNN missing-value
// filling to k, under stacking aggregation.
func Fig20b(e *Env) *Table {
	a := e.TextMatching()
	st, bank := stackingSetup(e, a)
	t := &Table{
		ID:      "fig20b",
		Title:   "Stacking accuracy vs KNN filling parameter k (random partial subsets)",
		Columns: []string{"k", "Acc(%)"},
	}
	ks := []int{1, 5, 10, 20, 50, 100}
	if e.Quick {
		ks = []int{1, 10, 100}
	}
	for _, k := range ks {
		st.Fill = filling.NewKNN(k, bank)
		t.AddRow(fmt.Sprintf("%d", k), fpct(stackingPartialAccuracy(e, a, st)))
	}
	t.Notes = append(t.Notes,
		"paper: accuracy is robust to k; only k=1 loses slightly")
	return t
}

// AblFill compares missing-value fillers under stacking aggregation.
func AblFill(e *Env) *Table {
	a := e.TextMatching()
	st, bank := stackingSetup(e, a)
	t := &Table{
		ID:      "abl-fill",
		Title:   "Missing-value filling strategies under stacking aggregation",
		Columns: []string{"filler", "Acc(%)"},
	}
	fillers := []ensemble.Filler{
		filling.NewKNN(10, bank),
		filling.MeanOfPresent{},
		&filling.Uniform{Classes: 2},
	}
	for _, f := range fillers {
		st.Fill = f
		t.AddRow(f.Name(), fpct(stackingPartialAccuracy(e, a, st)))
	}
	t.Notes = append(t.Notes, "KNN and mean-of-present reconstruct signal; uniform filling loses accuracy")
	return t
}

// stackingSetup trains the GBDT meta-classifier on the training split and
// builds the KNN history bank.
func stackingSetup(e *Env, a *pipeline.Artifacts) (*ensemble.Stacking, []filling.Record) {
	var xs [][]float64
	var ys []float64
	st := &ensemble.Stacking{M: a.Ensemble.M(), Classes: 2}
	for _, s := range a.Train {
		xs = append(xs, st.Features(a.Outs[s.ID]))
		ys = append(ys, float64(mathx.ArgMax(a.Refs[s.ID].Probs)))
	}
	st.Meta = gbdt.Train(gbdt.Config{
		Objective: gbdt.Logistic, NumTrees: e.scale(80, 30), MaxDepth: 3,
	}, xs, ys)
	bank := make([]filling.Record, 0, len(a.Train))
	for _, s := range a.Train {
		bank = append(bank, filling.Record{Outputs: a.Outs[s.ID]})
	}
	return st, bank
}

// stackingPartialAccuracy evaluates stacking+filler agreement with the
// full-stacking reference on random partial subsets of the serve pool.
func stackingPartialAccuracy(e *Env, a *pipeline.Artifacts, st *ensemble.Stacking) float64 {
	src := rng.New(e.Seed + 555)
	m := a.Ensemble.M()
	subs := ensemble.AllSubsets(m)
	var acc float64
	n := e.scale(800, 300)
	if n > len(a.Serve) {
		n = len(a.Serve)
	}
	for _, s := range a.Serve[:n] {
		full := st.Aggregate(dataset.Classification, a.Outs[s.ID], ensemble.Full(m))
		sub := subs[src.Intn(len(subs))]
		masked := make([]model.Output, len(a.Outs[s.ID]))
		for k := range masked {
			if sub.Contains(k) {
				masked[k] = a.Outs[s.ID][k]
			}
		}
		partial := st.Aggregate(dataset.Classification, masked, sub)
		if mathx.ArgMax(partial.Probs) == mathx.ArgMax(full.Probs) {
			acc++
		}
	}
	return acc / float64(n)
}
