package experiments

import (
	"fmt"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// schedVariant is one entry of the Exp-4 scheduler comparison.
type schedVariant struct {
	name     string
	sched    core.Scheduler
	overhead func(int) time.Duration
}

func schedVariants(quick bool) []schedVariant {
	vs := []schedVariant{
		{"Greedy+EDF", &core.Greedy{Order: core.EDF}, nil},
		{"Greedy+FIFO", &core.Greedy{Order: core.FIFO}, nil},
		{"Greedy+SJF", &core.Greedy{Order: core.SJF}, nil},
		{"DP(0.1)", &core.DP{Delta: 0.1, Vanilla: true}, DPOverhead(0.1)},
		{"DP(0.01)", &core.DP{Delta: 0.01, Vanilla: true}, DPOverhead(0.01)},
	}
	if !quick {
		vs = append(vs, schedVariant{"DP(0.001)", &core.DP{Delta: 0.001, Vanilla: true}, DPOverhead(0.001)})
	}
	return vs
}

// schedulerSweep compares scheduling algorithms across the deadline sweep
// for one task (Figs. 12, 17, 18).
func schedulerSweep(e *Env, id string, ts taskSetup) *Table {
	a := ts.artifacts()
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s: scheduling algorithms vs deadline", ts.name),
		Columns: []string{"deadline(ms)", "scheduler", ts.accName + "(%)", "DMR(%)"},
	}
	for _, d := range ts.deadlines() {
		tr, key := ts.trace(d)
		for _, v := range schedVariants(e.Quick) {
			cfg := sim.Config{
				Ensemble:      a.Ensemble,
				Refs:          a.Refs,
				Scorer:        a.Scorer,
				Scheduler:     v.sched,
				Rewarder:      a.Profile,
				Estimator:     a.Predictor,
				ScoreDelay:    a.Predictor.InferCost,
				SchedOverhead: v.overhead,
				Seed:          e.Seed,
			}
			s := metrics.Summarize(simRunCached(cfg, tr, a, a.Serve, key+"/"+v.name))
			t.AddRow(fms(d), v.name, fpct(s.Accuracy), fpct(s.DMR))
		}
	}
	t.Notes = append(t.Notes,
		"paper: DP(0.01) wins; greedy variants lose accuracy as deadlines loosen; DP(0.001)'s own cost hurts")
	return t
}

// Fig12 reproduces Fig. 12 (scheduler comparison, text matching). It runs
// on contended Poisson traffic: on the calibrated one-day trace the
// Schemble pipeline has so much capacity headroom that all schedulers
// coast; the paper's scheduler gaps appear when queues actually form.
func Fig12(e *Env) *Table {
	ts := e.tmSetup()
	ts.trace = e.ContendedTMTrace
	return schedulerSweep(e, "fig12", ts)
}

// Fig17 reproduces the appendix Fig. 17 (vehicle counting).
func Fig17(e *Env) *Table { return schedulerSweep(e, "fig17", e.vcSetup()) }

// Fig18 reproduces the appendix Fig. 18 (image retrieval).
func Fig18(e *Env) *Table { return schedulerSweep(e, "fig18", e.irSetup()) }

// Fig19 reproduces the appendix Fig. 19: the scheduler comparison
// restricted to the bursty 14-19h window of the one-day trace.
func Fig19(e *Env) *Table {
	a := e.TextMatching()
	// A heavier day (peak ~2.6x the base-rate calibration) so the burst
	// hours overload even the flexible pipeline.
	full := trace.OneDay(trace.OneDayConfig{
		Samples:     a.Serve,
		Deadline:    trace.ConstantDeadline(105 * time.Millisecond),
		HourSeconds: e.TMHourSeconds(),
		BaseRate:    2.4,
		Seed:        e.Seed + 10,
	})
	hour := time.Duration(e.TMHourSeconds() * float64(time.Second))
	tr := full.Window(14*hour, 19*hour)
	t := &Table{
		ID:      "fig19",
		Title:   "Scheduling algorithms on the bursty 14-19h window (text matching)",
		Columns: []string{"scheduler", "Acc(%)", "DMR(%)"},
	}
	for _, v := range schedVariants(e.Quick) {
		cfg := sim.Config{
			Ensemble:      a.Ensemble,
			Refs:          a.Refs,
			Scorer:        a.Scorer,
			Scheduler:     v.sched,
			Rewarder:      a.Profile,
			Estimator:     a.Predictor,
			ScoreDelay:    a.Predictor.InferCost,
			SchedOverhead: v.overhead,
			Seed:          e.Seed,
		}
		s := metrics.Summarize(simRunCached(cfg, tr, a, a.Serve, "fig19/"+v.name))
		t.AddRow(v.name, fpct(s.Accuracy), fpct(s.DMR))
	}
	t.Notes = append(t.Notes,
		"paper: DP's advantage over greedy grows when the queue is long")
	return t
}

// Fig21 reproduces the appendix Fig. 21: the quantization step's effect on
// scheduling overhead and accuracy.
func Fig21(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.ContendedTMTrace(105 * time.Millisecond)
	// Vanilla Alg. 1 (no exact-reward refinement) so the coarse-delta
	// accuracy loss the paper reports is visible.
	deltas := []float64{0.1, 0.05, 0.01, 0.005, 0.001}
	if e.Quick {
		deltas = []float64{0.1, 0.01, 0.001}
	}
	t := &Table{
		ID:      "fig21",
		Title:   "Quantization step delta: modeled planning cost vs serving quality",
		Columns: []string{"delta", "plan cost @16 queued", "Acc(%)", "DMR(%)"},
	}
	for _, d := range deltas {
		cfg := sim.Config{
			Ensemble:      a.Ensemble,
			Refs:          a.Refs,
			Scorer:        a.Scorer,
			Scheduler:     &core.DP{Delta: d, Vanilla: true},
			Rewarder:      a.Profile,
			Estimator:     a.Predictor,
			ScoreDelay:    a.Predictor.InferCost,
			SchedOverhead: DPOverhead(d),
			Seed:          e.Seed,
		}
		s := metrics.Summarize(simRunCached(cfg, tr, a, a.Serve, fmt.Sprintf("%s/delta-%g", key, d)))
		t.AddRow(fmt.Sprintf("%g", d), DPOverhead(d)(16).String(),
			fpct(s.Accuracy), fpct(s.DMR))
	}
	t.Notes = append(t.Notes,
		"paper: delta=0.01 is the sweet spot; smaller delta buys little reward and costs planning time")
	return t
}

// AblPrune compares the DP with and without Pareto dominance pruning: the
// plans must be equally good, but the unpruned frontier is much larger
// (we report the modelled per-plan state count).
func AblPrune(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.TMTrace(105 * time.Millisecond)
	t := &Table{
		ID:      "abl-prune",
		Title:   "DP Pareto pruning ablation",
		Columns: []string{"variant", "Acc(%)", "DMR(%)", "frontier cap"},
	}
	for _, pruned := range []bool{true, false} {
		d := &core.DP{Delta: 0.01, DisablePrune: !pruned}
		cfg := sim.Config{
			Ensemble:      a.Ensemble,
			Refs:          a.Refs,
			Scorer:        a.Scorer,
			Scheduler:     d,
			Rewarder:      a.Profile,
			Estimator:     a.Predictor,
			ScoreDelay:    a.Predictor.InferCost,
			SchedOverhead: DPOverhead(0.01),
			Seed:          e.Seed,
		}
		name, cap := "pruned", "-"
		if !pruned {
			name, cap = "unpruned", fmt.Sprintf("%d", core.UnprunedCap)
		}
		s := metrics.Summarize(simRunCached(cfg, tr, a, a.Serve, key+"/prune-"+name))
		t.AddRow(name, fpct(s.Accuracy), fpct(s.DMR), cap)
	}
	t.Notes = append(t.Notes,
		"pruning keeps only non-dominated availability vectors; disabling it forces a hard frontier cap instead")
	return t
}

// AblBuffer contrasts full Schemble with an immediate-selection variant
// that uses the discrepancy score but ignores the queue: it picks the
// cheapest subset within 2% of the best profiled reward the moment a query
// arrives. The gap isolates the contribution of the query buffer and the
// scheduler.
func AblBuffer(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.TMTrace(105 * time.Millisecond)
	t := &Table{
		ID:      "abl-buffer",
		Title:   "Query buffer + scheduler ablation (text matching, 105ms)",
		Columns: []string{"variant", "Acc(%)", "DMR(%)"},
	}
	s := metrics.Summarize(e.RunBaseline(a, Schemble, tr, key, false, 0))
	t.AddRow("Schemble (buffered DP)", fpct(s.Accuracy), fpct(s.DMR))

	subsets := ensemble.AllSubsets(a.Ensemble.M())
	immediate := func(smp *dataset.Sample) ensemble.Subset {
		score := a.Predictor.Predict(smp)
		best := a.Profile.BestSubsetWithin(score, subsets)
		bestR := a.Profile.Reward(score, best)
		chosen := best
		for _, sub := range subsets {
			if a.Profile.Reward(score, sub) >= 0.98*bestR && sub.Size() < chosen.Size() {
				chosen = sub
			}
		}
		return chosen
	}
	cfg := sim.Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Select:   immediate,
		Seed:     e.Seed,
	}
	si := metrics.Summarize(simRunCached(cfg, tr, a, a.Serve, key+"/immediate"))
	t.AddRow("immediate difficulty-aware selection", fpct(si.Accuracy), fpct(si.DMR))
	t.Notes = append(t.Notes,
		"buffered scheduling should dominate: identical difficulty signal, queue-aware decisions")
	return t
}
