package experiments

import (
	"fmt"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
)

// Fig1a reproduces Fig. 1a: the one-day query traffic of the intelligent
// Q&A system and the deadline miss rate of the original deep ensemble per
// time segment.
func Fig1a(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.TMTrace(100 * time.Millisecond)
	recs := e.RunBaseline(a, Original, tr, key, false, 0)
	hourSeconds := e.TMHourSeconds()
	width := time.Duration(hourSeconds * float64(time.Second))
	segs := metrics.Segment(recs, width, tr.Horizon)
	t := &Table{
		ID:      "fig1a",
		Title:   "One-day traffic and deadline miss rate of the original ensemble (deadline 100ms)",
		Columns: []string{"hour", "queries", "rate(q/s)", "DMR(%)"},
	}
	for h := 0; h < 24 && h < len(segs); h++ {
		s := segs[h]
		t.AddRow(fmt.Sprintf("%02d", h),
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.1f", float64(s.N)/hourSeconds),
			fpct(s.DMR))
	}
	t.Notes = append(t.Notes,
		"paper: miss rate tracks load and peaks ~45% in the burst hours")
	return t
}

// Fig1b reproduces Fig. 1b: accuracy (against true labels) and latency of
// the base models vs the ensemble.
func Fig1b(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:      "fig1b",
		Title:   "Base models vs ensemble (text matching): accuracy and latency",
		Columns: []string{"model", "accuracy(%)", "latency(ms)"},
	}
	labelAcc := func(pred func(id int) []float64) float64 {
		var correct float64
		for _, s := range a.Dataset.Samples {
			if mathx.ArgMax(pred(s.ID)) == s.Label {
				correct++
			}
		}
		return correct / float64(len(a.Dataset.Samples))
	}
	var slowest time.Duration
	for k, m := range a.Ensemble.Models {
		k := k
		acc := labelAcc(func(id int) []float64 { return a.Outs[id][k].Probs })
		t.AddRow(m.Name(), fpct(acc), fms(m.MeanLatency()))
		if m.MeanLatency() > slowest {
			slowest = m.MeanLatency()
		}
	}
	ensAcc := labelAcc(func(id int) []float64 { return a.Refs[id].Probs })
	// Parallel execution: the ensemble's latency is the slowest member
	// plus the (neglectable) aggregation cost.
	t.AddRow("ensemble", fpct(ensAcc), fms(slowest+2*time.Millisecond))
	t.Notes = append(t.Notes,
		"paper: ensemble beats every base model; latency slightly above the slowest member")
	return t
}

// Fig4a reproduces Fig. 4a: the distribution of discrepancy scores on the
// three datasets.
func Fig4a(e *Env) *Table {
	t := &Table{
		ID:      "fig4a",
		Title:   "Distribution of discrepancy scores (fraction per score decile)",
		Columns: []string{"bin", "textmatching", "vehiclecounting", "imageretrieval"},
	}
	arts := []*pipeline.Artifacts{e.TextMatching(), e.VehicleCounting(), e.ImageRetrieval()}
	const bins = 10
	hists := make([][]float64, len(arts))
	for i, a := range arts {
		h := make([]float64, bins)
		for _, s := range a.TrueScores {
			b := int(s * bins)
			if b >= bins {
				b = bins - 1
			}
			h[b]++
		}
		for b := range h {
			h[b] /= float64(len(a.TrueScores))
		}
		hists[i] = h
	}
	for b := 0; b < bins; b++ {
		t.AddRow(fmt.Sprintf("%.1f-%.1f", float64(b)/bins, float64(b+1)/bins),
			f3(hists[0][b]), f3(hists[1][b]), f3(hists[2][b]))
	}
	return t
}

// Fig4b reproduces Fig. 4b: agreement of every model combination with the
// full ensemble per discrepancy-score bin (text matching).
func Fig4b(e *Env) *Table {
	a := e.TextMatching()
	p := a.Profile
	subsets := ensemble.AllSubsets(a.Ensemble.M())
	cols := []string{"bin"}
	for _, s := range subsets {
		cols = append(cols, s.String())
	}
	t := &Table{
		ID:      "fig4b",
		Title:   "Accuracy of model combinations per discrepancy-score bin (text matching)",
		Columns: cols,
	}
	for b := 0; b < p.Bins; b++ {
		row := []string{fmt.Sprintf("%d", b)}
		for _, s := range subsets {
			row = append(row, fpct(p.RewardBin(b, s)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: easy bins exceed 90% for all combinations; hard bins degrade for small subsets")
	return t
}

// Fig5 reproduces Fig. 5: correlation of model preferences across
// architectures and random seeds, versus the stability of the discrepancy
// score. Preference of model k is the vector of distances d(f_k(x), E(x)).
func Fig5(e *Env) *Table {
	a := e.SixModel()
	ds := a.Dataset
	m := a.Ensemble.M()

	// Second, independently seeded copy of each architecture (retrained
	// with a different random seed, in the paper's terms).
	skills := []float64{0.70, 0.76, 0.80, 0.84, 0.87, 0.90}
	var alt []model.Model
	for i := range skills {
		alt = append(alt, model.NewSynthetic(model.SyntheticConfig{
			Name: a.Ensemble.Models[i].Name() + "'", Task: dataset.Classification,
			Classes: 2, Skill: skills[i],
			Latency:  a.Ensemble.Models[i].MeanLatency(),
			MemoryMB: 400, Kappa: 9, Seed: e.Seed + 300 + uint64(i),
		}))
	}
	altEns := ensemble.New(dataset.Classification, alt, &ensemble.Average{}, nil)

	// Preference vectors: distance of each model's output to its
	// ensemble's output, per sample.
	pref := make([][]float64, m)    // seed A
	prefAlt := make([][]float64, m) // seed B
	var disA, disB []float64        // discrepancy scores per seed
	for k := 0; k < m; k++ {
		pref[k] = make([]float64, 0, len(ds.Samples))
		prefAlt[k] = make([]float64, 0, len(ds.Samples))
	}
	for _, s := range ds.Samples {
		outsA := a.Outs[s.ID]
		refA := a.Refs[s.ID]
		outsB := altEns.Outputs(s)
		refB := altEns.Predict(outsB, altEns.FullSubset())
		var sumA, sumB float64
		for k := 0; k < m; k++ {
			dA := mathx.JS(outsA[k].Probs, refA.Probs)
			dB := mathx.JS(outsB[k].Probs, refB.Probs)
			pref[k] = append(pref[k], dA)
			prefAlt[k] = append(prefAlt[k], dB)
			sumA += dA
			sumB += dB
		}
		disA = append(disA, sumA/float64(m))
		disB = append(disB, sumB/float64(m))
	}

	t := &Table{
		ID:      "fig5",
		Title:   "Correlation of model preferences across seeds vs discrepancy-score stability",
		Columns: []string{"quantity", "corr(seedA, seedB)"},
	}
	var prefMean float64
	for k := 0; k < m; k++ {
		r := mathx.Pearson(pref[k], prefAlt[k])
		prefMean += r
		t.AddRow(a.Ensemble.Models[k].Name()+" preference", f3(r))
	}
	prefMean /= float64(m)
	disCorr := mathx.Pearson(disA, disB)
	t.AddRow("mean preference", f3(prefMean))
	t.AddRow("discrepancy score", f3(disCorr))
	t.Notes = append(t.Notes,
		"paper: per-model preferences are unstable across seeds; the discrepancy score correlates strongly")
	return t
}

// Fig13 reproduces Fig. 13: latency and memory of the discrepancy
// prediction network relative to the deep ensemble.
func Fig13(e *Env) *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "Overhead of the discrepancy predictor vs the deep ensemble",
		Columns: []string{"task", "pred lat(ms)", "ens lat(ms)", "lat(%)", "pred mem(MB)", "ens mem(MB)", "mem(%)"},
	}
	for _, a := range []*pipeline.Artifacts{e.TextMatching(), e.VehicleCounting(), e.ImageRetrieval()} {
		var ensLat time.Duration
		var ensMem int64
		for _, m := range a.Ensemble.Models {
			if m.MeanLatency() > ensLat {
				ensLat = m.MeanLatency()
			}
			ensMem += m.Memory()
		}
		p := a.Predictor
		t.AddRow(a.Dataset.Name,
			fms(p.InferCost), fms(ensLat),
			fpct(float64(p.InferCost)/float64(ensLat)),
			fmt.Sprintf("%d", p.MemoryBytes>>20),
			fmt.Sprintf("%d", ensMem>>20),
			fpct(float64(p.MemoryBytes)/float64(ensMem)))
	}
	t.Notes = append(t.Notes,
		"paper: predictor costs ~6.5% of ensemble runtime and 0.4-2% of its memory")
	return t
}
