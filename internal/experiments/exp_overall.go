package experiments

import (
	"fmt"
	"time"

	"schemble/internal/metrics"
	"schemble/internal/pipeline"
	"schemble/internal/trace"
)

// tmDeadlines are the constant-deadline sweep points for text matching;
// all exceed the slowest base model (90ms), as the paper requires.
func (e *Env) tmDeadlines() []time.Duration {
	if e.Quick {
		return []time.Duration{105 * time.Millisecond, 140 * time.Millisecond}
	}
	return []time.Duration{
		105 * time.Millisecond, 115 * time.Millisecond, 130 * time.Millisecond,
		150 * time.Millisecond, 180 * time.Millisecond,
	}
}

func (e *Env) vcDeadlines() []time.Duration {
	if e.Quick {
		return []time.Duration{90 * time.Millisecond, 140 * time.Millisecond}
	}
	return []time.Duration{
		70 * time.Millisecond, 90 * time.Millisecond, 110 * time.Millisecond,
		140 * time.Millisecond, 180 * time.Millisecond,
	}
}

func (e *Env) irDeadlines() []time.Duration {
	if e.Quick {
		return []time.Duration{160 * time.Millisecond, 250 * time.Millisecond}
	}
	return []time.Duration{
		140 * time.Millisecond, 170 * time.Millisecond, 200 * time.Millisecond,
		250 * time.Millisecond, 300 * time.Millisecond,
	}
}

// taskSetup bundles the per-task sweep machinery.
type taskSetup struct {
	name      string
	artifacts func() *pipeline.Artifacts
	trace     func(time.Duration) (*trace.Trace, string)
	deadlines func() []time.Duration
	accName   string // "Acc" or "mAP"
}

func (e *Env) tmSetup() taskSetup {
	return taskSetup{"text matching", e.TextMatching, e.TMTrace, e.tmDeadlines, "Acc"}
}
func (e *Env) vcSetup() taskSetup {
	return taskSetup{"vehicle counting", e.VehicleCounting, e.VCTrace, e.vcDeadlines, "Acc"}
}
func (e *Env) irSetup() taskSetup {
	return taskSetup{"image retrieval", e.ImageRetrieval, e.IRTrace, e.irDeadlines, "mAP"}
}

// sweepDeadlines runs every baseline across the task's deadline sweep and
// renders accuracy and DMR per point (Figs. 6, 7, 8).
func sweepDeadlines(e *Env, id string, ts taskSetup) *Table {
	a := ts.artifacts()
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("%s: %s and DMR vs deadline", ts.name, ts.accName),
		Columns: []string{"deadline(ms)", "baseline",
			ts.accName + "(%)", "DMR(%)", "processed(%)", "mean|s|"},
	}
	for _, d := range ts.deadlines() {
		tr, key := ts.trace(d)
		for _, b := range Baselines {
			s := metrics.Summarize(e.RunBaseline(a, b, tr, key, false, 0))
			t.AddRow(fms(d), b.String(), fpct(s.Accuracy), fpct(s.DMR),
				fpct(s.Processed), fmt.Sprintf("%.2f", s.MeanSubsetSize))
		}
	}
	t.Notes = append(t.Notes,
		"paper: Schemble attains the best accuracy and (near-)lowest DMR at every deadline")
	return t
}

// Fig6 reproduces Fig. 6 (text matching, one-day trace).
func Fig6(e *Env) *Table { return sweepDeadlines(e, "fig6", e.tmSetup()) }

// Fig7 reproduces Fig. 7 (vehicle counting, Poisson with per-camera random
// deadlines).
func Fig7(e *Env) *Table { return sweepDeadlines(e, "fig7", e.vcSetup()) }

// Fig8 reproduces Fig. 8 (image retrieval, Poisson with constant
// deadlines).
func Fig8(e *Env) *Table { return sweepDeadlines(e, "fig8", e.irSetup()) }

// Table1 reproduces Table I: per-task accuracy and DMR averaged over the
// deadline sweep, per baseline.
func Table1(e *Env) *Table {
	t := &Table{
		ID:    "tab1",
		Title: "Average accuracy and DMR across deadline constraints",
		Columns: []string{"baseline",
			"TM Acc", "TM DMR", "VC Acc", "VC DMR", "IR mAP", "IR DMR"},
	}
	setups := []taskSetup{e.tmSetup(), e.vcSetup(), e.irSetup()}
	for _, b := range Baselines {
		row := []string{b.String()}
		for _, ts := range setups {
			a := ts.artifacts()
			var acc, dmr float64
			deadlines := ts.deadlines()
			for _, d := range deadlines {
				tr, key := ts.trace(d)
				s := metrics.Summarize(e.RunBaseline(a, b, tr, key, false, 0))
				acc += s.Accuracy
				dmr += s.DMR
			}
			n := float64(len(deadlines))
			row = append(row, fpct(acc/n), fpct(dmr/n))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper (TM): Original 60.4/39.6, Static 84.8/12.3, DES 66.2/30.7, Gating 85.3/8.0, Schemble(ea) 87.6/6.8, Schemble 91.2/6.1")
	return t
}

// Table2 reproduces Table II: forced processing — every query is served;
// accuracy plus latency mean/P95/max per baseline and task.
func Table2(e *Env) *Table {
	t := &Table{
		ID:    "tab2",
		Title: "Forced processing: accuracy and latency (mean / P95 / max seconds)",
		Columns: []string{"task", "baseline", "Acc(%)",
			"mean(s)", "P95(s)", "max(s)"},
	}
	type point struct {
		ts       taskSetup
		deadline time.Duration
	}
	points := []point{
		{e.tmSetup(), 105 * time.Millisecond},
		{e.vcSetup(), 110 * time.Millisecond},
		{e.irSetup(), 140 * time.Millisecond},
	}
	for _, p := range points {
		a := p.ts.artifacts()
		tr, key := p.ts.trace(p.deadline)
		for _, b := range Baselines {
			s := metrics.Summarize(e.RunBaseline(a, b, tr, key, true, 0))
			t.AddRow(p.ts.name, b.String(), fpct(s.Processed),
				fsec(s.LatMean), fsec(s.LatP95), fsec(s.LatMax))
		}
	}
	t.Notes = append(t.Notes,
		"paper: Original's mean latency explodes under bursts (50.5s TM); Schemble keeps ~0.1s with ~97% accuracy")
	return t
}

// Fig9 reproduces Fig. 9: latency and accuracy per time segment on the
// one-day text matching trace, forced processing.
func Fig9(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.TMTrace(105 * time.Millisecond)
	hourSeconds := e.TMHourSeconds()
	width := time.Duration(hourSeconds * float64(time.Second))
	t := &Table{
		ID:      "fig9",
		Title:   "Per-hour latency (ms) and accuracy (%) on the one-day trace, forced processing",
		Columns: []string{"hour"},
	}
	show := []Baseline{Original, Static, Gating, Schemble}
	for _, b := range show {
		t.Columns = append(t.Columns, b.String()+" lat", b.String()+" acc")
	}
	segsOf := make(map[Baseline][]metrics.Summary)
	for _, b := range show {
		recs := e.RunBaseline(a, b, tr, key, true, 0)
		segsOf[b] = metrics.Segment(recs, width, tr.Horizon)
	}
	for h := 0; h < 24; h++ {
		row := []string{fmt.Sprintf("%02d", h)}
		for _, b := range show {
			s := segsOf[b][h]
			row = append(row, fms(s.LatMean), fpct(s.Processed))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Schemble, Static and Gating eliminate the latency burst; Schemble keeps the best accuracy")
	return t
}

// Fig14 reproduces the appendix Fig. 14: per-hour accuracy and DMR on the
// one-day trace with rejection enabled.
func Fig14(e *Env) *Table {
	a := e.TextMatching()
	tr, key := e.TMTrace(105 * time.Millisecond)
	hourSeconds := e.TMHourSeconds()
	width := time.Duration(hourSeconds * float64(time.Second))
	t := &Table{
		ID:      "fig14",
		Title:   "Per-hour accuracy (%) and DMR (%) on the one-day trace",
		Columns: []string{"hour"},
	}
	show := []Baseline{Original, Static, DESel, Gating, Schemble}
	for _, b := range show {
		t.Columns = append(t.Columns, b.String()+" acc", b.String()+" dmr")
	}
	segsOf := make(map[Baseline][]metrics.Summary)
	for _, b := range show {
		recs := e.RunBaseline(a, b, tr, key, false, 0)
		segsOf[b] = metrics.Segment(recs, width, tr.Horizon)
	}
	for h := 0; h < 24; h++ {
		row := []string{fmt.Sprintf("%02d", h)}
		for _, b := range show {
			s := segsOf[b][h]
			row = append(row, fpct(s.Accuracy), fpct(s.DMR))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: in light hours Schemble uses all three models (near-zero DMR); in the burst its DMR rises least")
	return t
}

// tradeoff renders the Fig. 11/15 objective study for one task: the
// weighted objective c = 100*Acc - lambda*latency per baseline for a range
// of lambdas, marking the winner.
func tradeoff(e *Env, id string, ts taskSetup, deadline time.Duration) *Table {
	a := ts.artifacts()
	tr, key := ts.trace(deadline)
	type stats struct {
		acc float64
		lat time.Duration
	}
	st := map[Baseline]stats{}
	for _, b := range Baselines {
		s := metrics.Summarize(e.RunBaseline(a, b, tr, key, true, 0))
		st[b] = stats{s.Processed, s.LatMean}
	}
	lambdas := []float64{0.01, 0.1, 1, 10, 100, 500}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s: tradeoff objective c = 100*Acc - lambda*latency (forced processing)", ts.name),
		Columns: []string{"lambda"},
	}
	for _, b := range Baselines {
		t.Columns = append(t.Columns, b.String())
	}
	t.Columns = append(t.Columns, "winner")
	for _, l := range lambdas {
		row := []string{fmt.Sprintf("%g", l)}
		bestB := Baselines[0]
		bestC := metrics.Objective(st[bestB].acc, st[bestB].lat, l)
		for _, b := range Baselines {
			c := metrics.Objective(st[b].acc, st[b].lat, l)
			row = append(row, fmt.Sprintf("%.2f", c))
			if c > bestC {
				bestB, bestC = b, c
			}
		}
		row = append(row, bestB.String())
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Schemble wins across a wide central range of lambda; extremes favor single-metric specialists")
	return t
}

// Fig11 reproduces Fig. 11 (text matching tradeoff).
func Fig11(e *Env) *Table { return tradeoff(e, "fig11", e.tmSetup(), 105*time.Millisecond) }

// Fig15 reproduces the appendix Fig. 15 (vehicle counting and image
// retrieval tradeoffs).
func Fig15(e *Env) *Table {
	vc := tradeoff(e, "fig15", e.vcSetup(), 110*time.Millisecond)
	ir := tradeoff(e, "fig15-ir", e.irSetup(), 140*time.Millisecond)
	vc.Title = "Tradeoff objectives on vehicle counting (top) and image retrieval (bottom)"
	vc.AddRow() // visual separator
	vc.Rows = append(vc.Rows, ir.Rows...)
	return vc
}
