package experiments

import (
	"fmt"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/mathx"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/trace"
)

// AblCalib disentangles the two ingredients the discrepancy score adds on
// top of plain ensemble agreement: per-model temperature calibration and
// per-model ECDF normalization. Raw mean distances are distorted by
// heterogeneous overconfidence, so calibration helps them; rank
// normalization makes distances scale-free, largely subsuming calibration
// — which is why the full score is robust either way.
func AblCalib(e *Env) *Table {
	t := &Table{
		ID:      "abl-calib",
		Title:   "Calibration x normalization in the discrepancy score (corr with latent difficulty)",
		Columns: []string{"distances", "normalization", "corr(score, difficulty)"},
	}
	ds := dataset.TextMatching(dataset.Config{N: e.scale(3000, 1200), Seed: e.Seed + 91})
	difficulty := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		difficulty[i] = s.Difficulty
	}
	for _, disable := range []bool{false, true} {
		a := pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.TextMatchingModels(e.Seed + 91),
			PredictorEpochs:    1, // predictor unused here
			DisableCalibration: disable,
			Seed:               e.Seed + 91,
		})
		name := "calibrated"
		if disable {
			name = "uncalibrated"
		}
		// Normalized (the full Eq. 1 score).
		norm := make([]float64, len(ds.Samples))
		for i, s := range ds.Samples {
			norm[i] = a.TrueScores[s.ID]
		}
		t.AddRow(name, "ecdf", f3(mathx.Pearson(norm, difficulty)))
		// Raw mean distance (no per-model normalization).
		raw := make([]float64, len(ds.Samples))
		for i, s := range ds.Samples {
			var sum float64
			for k := range a.Ensemble.Models {
				out := a.Outs[s.ID][k]
				if !disable && a.DisScorer.Calibrators != nil {
					out = model.Output{Probs: a.DisScorer.Calibrators[k].Apply(out.Probs)}
				}
				sum += discrepancy.Distance(dataset.Classification, out, a.Refs[s.ID])
			}
			raw[i] = sum / float64(a.Ensemble.M())
		}
		t.AddRow(name, "raw", f3(mathx.Pearson(raw, difficulty)))
	}
	t.Notes = append(t.Notes,
		"rank normalization dominates; calibration mainly repairs raw (unnormalized) distances")
	return t
}

// AblFastPath evaluates the paper's Exp-5 optimization: bypassing the
// predictor and scheduler for queries that arrive to an empty buffer,
// assigning them directly to the fastest model. Under light traffic this
// trims the extra waiting time; the cost is single-model accuracy on the
// bypassed queries.
func AblFastPath(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:      "abl-fastpath",
		Title:   "Fast-path dispatch for idle arrivals (light Poisson traffic, forced processing)",
		Columns: []string{"variant", "Acc(%)", "mean lat(ms)", "P95 lat(ms)"},
	}
	tr := lightTrace(e, a)
	for _, fast := range []bool{false, true} {
		cfg := baselineConfig(e, a, Schemble, tr)
		cfg.FastFirst = fast
		cfg.ForceProcess = true
		name := "buffered (score + schedule)"
		key := "fastpath-off"
		if fast {
			name = "fast path (bypass when idle)"
			key = "fastpath-on"
		}
		s := metricsSummarize(simRunCached(cfg, tr, a, a.Serve, key))
		t.AddRow(name, fpct(s.Processed), fms(s.LatMean), fms(s.LatP95))
	}
	t.Notes = append(t.Notes,
		"paper (Exp-5): the extra waiting time can be eliminated by assigning idle-system arrivals straight to the fastest model")
	return t
}

// AblTraffic checks that Schemble's advantage over the Original pipeline
// is robust to the arrival process: the same comparison under plain
// Poisson, Markov-modulated Poisson (abrupt regime switches) and
// worst-case instantaneous spikes.
func AblTraffic(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:      "abl-traffic",
		Title:   "Schemble vs Original across traffic models (deadline 150ms)",
		Columns: []string{"traffic", "baseline", "Acc(%)", "DMR(%)"},
	}
	deadline := trace.ConstantDeadline(150 * time.Millisecond)
	n := e.scale(5000, 1000)
	traces := []struct {
		name string
		tr   *trace.Trace
	}{
		{"poisson", trace.Poisson(trace.PoissonConfig{
			RatePerSec: 30, N: n, Samples: a.Serve, Deadline: deadline, Seed: e.Seed + 41})},
		{"mmpp", trace.MMPP(trace.MMPPConfig{
			Rates: []float64{5, 70}, N: n, Samples: a.Serve, Deadline: deadline, Seed: e.Seed + 42})},
		{"spikes", trace.Spikes(trace.SpikeConfig{
			BackgroundRate: 5, Burst: 40, Period: 2 * time.Second,
			N: n, Samples: a.Serve, Deadline: deadline, Seed: e.Seed + 43})},
	}
	for _, tc := range traces {
		for _, b := range []Baseline{Original, Schemble} {
			cfg := baselineConfig(e, a, b, tc.tr)
			s := metricsSummarize(simRunCached(cfg, tc.tr, a, a.Serve, "abl-traffic/"+tc.name+"/"+b.String()))
			t.AddRow(tc.name, b.String(), fpct(s.Accuracy), fpct(s.DMR))
		}
	}
	t.Notes = append(t.Notes,
		"the scheduling advantage must hold regardless of how the burstiness is generated")
	return t
}

// AblBatch contrasts Schemble's per-query scheduling with request batching
// — the serving industry's standard throughput lever. Batching amortizes
// model invocations but stretches every batched item's latency by the
// batch factor, so under per-query deadlines it helps only while the
// stretched latency still fits; Schemble raises throughput by shrinking
// *work* per query instead, which composes with any deadline.
func AblBatch(e *Env) *Table {
	a := e.TextMatching()
	t := &Table{
		ID:      "abl-batch",
		Title:   "Batching vs difficulty-dependent scheduling (40 q/s, deadline 150ms)",
		Columns: []string{"variant", "Acc(%)", "DMR(%)"},
	}
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 40, N: e.scale(5000, 1000), Samples: a.Serve,
		Deadline: trace.ConstantDeadline(150 * time.Millisecond),
		Seed:     e.Seed + 51,
	})
	variants := []struct {
		name  string
		b     Baseline
		batch int
	}{
		{"Original", Original, 0},
		{"Original + batch 2", Original, 2},
		{"Original + batch 4", Original, 4},
		{"Original + batch 8", Original, 8},
		{"Schemble (no batching)", Schemble, 0},
	}
	for _, v := range variants {
		cfg := baselineConfig(e, a, v.b, tr)
		cfg.BatchSize = v.batch
		s := metricsSummarize(simRunCached(cfg, tr, a, a.Serve,
			fmt.Sprintf("abl-batch/%s-%d", v.b, v.batch)))
		t.AddRow(v.name, fpct(s.Accuracy), fpct(s.DMR))
	}
	t.Notes = append(t.Notes,
		"batch latency = base * (1 + 0.15*(n-1)): batch 4 of the 90ms model takes ~130ms, batch 8 ~184ms > deadline")
	return t
}
