// Large ensemble example: a six-model classification ensemble where
// exhaustively profiling all 63 subsets would be costly, so rewards for
// subsets larger than two are *estimated* with the paper's marginal-reward
// recursion (Eq. 3) from singleton and pair measurements only — and the DP
// scheduler runs against the estimated rewards.
//
//	go run ./examples/largeensemble
package main

import (
	"fmt"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/profiling"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

func main() {
	// Six architectures with graded skill and latency (the CIFAR100-like
	// study of the paper's Fig. 5 / Fig. 20a).
	skills := []float64{0.70, 0.76, 0.80, 0.84, 0.87, 0.90}
	names := []string{"vgg16", "resnet18", "resnet101", "densenet121", "inceptionv3", "resnext50"}
	var models []model.Model
	for i := range skills {
		models = append(models, model.NewSynthetic(model.SyntheticConfig{
			Name: names[i], Task: dataset.Classification, Classes: 2,
			Skill: skills[i], Latency: time.Duration(30+10*i) * time.Millisecond,
			MemoryMB: 400, Seed: uint64(900 + i),
		}))
	}
	ds := dataset.TextMatching(dataset.Config{N: 3000, Seed: 9})
	arts := pipeline.Build(pipeline.Config{
		Dataset: ds, Models: models, PredictorEpochs: 60, Seed: 9,
	})

	// Rewards: pairs and singletons from the measured profile, larger
	// subsets via the Eq. 3 estimator with fitted diminishing factors.
	gammas := profiling.FitGammas(arts.Profile)
	est := profiling.NewEstimator(arts.Profile, gammas)
	rewarder := profiling.RewarderFor(arts.Profile, est)
	fmt.Printf("6-model ensemble: %d subsets, fitted gammas %v\n",
		len(ensemble.AllSubsets(6)), gammas[2:])

	// Serve a burst with the estimated rewards.
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 30, N: 3000, Samples: arts.Serve,
		Deadline: trace.ConstantDeadline(250 * time.Millisecond), Seed: 9,
	})
	run := func(name string, rw core.Rewarder) metrics.Summary {
		recs := sim.Run(sim.Config{
			Ensemble:   arts.Ensemble,
			Refs:       arts.Refs,
			Scorer:     arts.Scorer,
			Scheduler:  &core.DP{Delta: 0.01},
			Rewarder:   rw,
			Estimator:  arts.Predictor,
			ScoreDelay: arts.Predictor.InferCost,
			Seed:       9,
		}, tr, arts.Serve)
		s := metrics.Summarize(recs)
		fmt.Printf("%-22s Acc %.1f%%  DMR %.1f%%  mean|s| %.2f\n",
			name, 100*s.Accuracy, 100*s.DMR, s.MeanSubsetSize)
		return s
	}
	run("measured profile", arts.Profile)
	run("estimated (Eq. 3)", rewarder)

	// Original pipeline for reference.
	fullSub := arts.Ensemble.FullSubset()
	recs := sim.Run(sim.Config{
		Ensemble: arts.Ensemble, Refs: arts.Refs, Scorer: arts.Scorer,
		Select: func(*dataset.Sample) ensemble.Subset { return fullSub },
		Seed:   9,
	}, tr, arts.Serve)
	s := metrics.Summarize(recs)
	fmt.Printf("%-22s Acc %.1f%%  DMR %.1f%%  mean|s| %.2f\n",
		"original (all six)", 100*s.Accuracy, 100*s.DMR, s.MeanSubsetSize)

	fmt.Println("\nscheduling against estimated rewards preserves the win while")
	fmt.Println("profiling only O(m^2) subsets instead of 2^m-1.")
}
