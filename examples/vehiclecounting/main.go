// Vehicle counting example: a regression ensemble of three object
// detectors counts vehicles in video frames from 24 cameras; per-camera
// deadlines model locations with different priorities, as in the paper's
// UA-DETRAC experiment. The example shows how Schemble's executed subset
// size tracks query difficulty.
//
//	go run ./examples/vehiclecounting
package main

import (
	"fmt"
	"time"

	"schemble"
	"schemble/internal/trace"
)

func main() {
	ds, models := schemble.VehicleCountingBench(11)
	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: 11})

	// Per-camera uniform deadlines in [60ms, 180ms].
	pool := fw.ServingPool()
	tr := trace.Poisson(trace.PoissonConfig{
		RatePerSec: 35, N: 4000, Samples: pool,
		Deadline: trace.NewCameraDeadline(60*time.Millisecond, 180*time.Millisecond, 11),
		Seed:     11,
	})

	sum, recs := fw.Simulate(schemble.SimOptions{Trace: tr})
	orig, _ := fw.SimulateOriginal(schemble.SimOptions{Trace: tr})

	fmt.Printf("vehicle counting: %d frames, 24 cameras, per-camera deadlines\n\n", tr.N())
	fmt.Printf("%-10s %8s %8s\n", "pipeline", "Acc(%)", "DMR(%)")
	fmt.Printf("%-10s %8.1f %8.1f\n", "Original", 100*orig.Accuracy, 100*orig.DMR)
	fmt.Printf("%-10s %8.1f %8.1f\n", "Schemble", 100*sum.Accuracy, 100*sum.DMR)

	// Difficulty-dependent execution: bucket served frames by predicted
	// difficulty and report the mean executed subset size per bucket.
	type bucket struct {
		sizeSum float64
		n       int
	}
	var buckets [5]bucket
	byID := make(map[int]*schemble.Sample, len(pool))
	for _, s := range pool {
		byID[s.ID] = s
	}
	for _, r := range recs {
		if r.Missed {
			continue
		}
		d := fw.Difficulty(byID[r.SampleID])
		b := int(d * 5)
		if b > 4 {
			b = 4
		}
		buckets[b].sizeSum += float64(r.Subset.Size())
		buckets[b].n++
	}
	fmt.Printf("\npredicted difficulty -> mean executed subset size\n")
	for b, v := range buckets {
		if v.n == 0 {
			continue
		}
		fmt.Printf("  [%.1f, %.1f): %.2f models (%d frames)\n",
			float64(b)/5, float64(b+1)/5, v.sizeSum/float64(v.n), v.n)
	}
}
