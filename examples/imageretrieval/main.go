// Image retrieval example: a two-model DELG-like embedding ensemble ranks
// a gallery; mAP is measured against the full ensemble's ranking. The
// example also demonstrates the real-time concurrent server.
//
//	go run ./examples/imageretrieval
package main

import (
	"context"
	"fmt"
	"time"

	"schemble"
)

func main() {
	ds, models := schemble.ImageRetrievalBench(13)
	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: 13})

	// Deterministic simulation first: Poisson traffic, constant deadlines.
	tr := fw.PoissonTrace(16, 1500, 150*time.Millisecond, 1)
	sum, _ := fw.Simulate(schemble.SimOptions{Trace: tr})
	orig, _ := fw.SimulateOriginal(schemble.SimOptions{Trace: tr})
	fmt.Printf("image retrieval: %d queries, gallery %d, deadline 150ms\n\n",
		tr.N(), len(ds.Gallery))
	fmt.Printf("%-10s %8s %8s\n", "pipeline", "mAP(%)", "DMR(%)")
	fmt.Printf("%-10s %8.1f %8.1f\n", "Original", 100*orig.Accuracy, 100*orig.DMR)
	fmt.Printf("%-10s %8.1f %8.1f\n", "Schemble", 100*sum.Accuracy, 100*sum.DMR)

	// Then a short real-time run: goroutine workers, channel dispatch,
	// 20x compressed wall clock.
	fmt.Println("\nreal-time server, 30 queries at ~20 q/s:")
	srv := fw.NewServer(schemble.ServerOptions{TimeScale: 0.1})
	srv.Start(context.Background())
	defer srv.Stop()

	pool := fw.ServingPool()
	served, missed := 0, 0
	var chans []<-chan schemble.ServeResult
	for i := 0; i < 30; i++ {
		chans = append(chans, srv.Submit(pool[i], 300*time.Millisecond))
		time.Sleep(5 * time.Millisecond) // ~50ms virtual gap at 10x
	}
	for _, ch := range chans {
		if r := <-ch; r.Missed {
			missed++
		} else {
			served++
		}
	}
	fmt.Printf("  served %d, missed %d\n", served, missed)
}
