// Text matching example: replay the diurnal one-day bank-Q&A trace (the
// Fig. 1a workload) through Schemble and the Original pipeline, reporting
// per-hour deadline miss rates — the experiment that motivates the paper.
//
//	go run ./examples/textmatching
package main

import (
	"fmt"
	"time"

	"schemble"
)

func main() {
	ds, models := schemble.TextMatchingBench(7)
	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: 7})

	const hourSeconds = 20 // compress each hour to 20 virtual seconds
	tr := fw.OneDayTrace(100*time.Millisecond, hourSeconds, 1)
	fmt.Printf("one-day trace: %d queries, deadline 100ms\n\n", tr.N())

	schSum, schRecs := fw.Simulate(schemble.SimOptions{Trace: tr})
	origSum, origRecs := fw.SimulateOriginal(schemble.SimOptions{Trace: tr})

	// Per-hour breakdown.
	width := time.Duration(hourSeconds * float64(time.Second))
	perHour := func(recs []schemble.Record) []schemble.Summary {
		buckets := make([][]schemble.Record, 24)
		for _, r := range recs {
			h := int(r.Arrival / width)
			if h > 23 {
				h = 23
			}
			buckets[h] = append(buckets[h], r)
		}
		out := make([]schemble.Summary, 24)
		for h := range buckets {
			out[h] = schemble.Summarize(buckets[h])
		}
		return out
	}
	so := perHour(origRecs)
	ss := perHour(schRecs)

	fmt.Printf("%4s %8s %14s %14s\n", "hour", "queries", "Original DMR", "Schemble DMR")
	for h := 0; h < 24; h++ {
		fmt.Printf("%4d %8d %13.1f%% %13.1f%%\n",
			h, so[h].N, 100*so[h].DMR, 100*ss[h].DMR)
	}
	fmt.Printf("\noverall: Original Acc %.1f%% DMR %.1f%% | Schemble Acc %.1f%% DMR %.1f%%\n",
		100*origSum.Accuracy, 100*origSum.DMR,
		100*schSum.Accuracy, 100*schSum.DMR)
}
