// Quickstart: build a three-model deep ensemble, fit Schemble, and compare
// it against the original full-ensemble pipeline on a bursty Poisson
// workload with 150ms deadlines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"schemble"
)

func main() {
	// 1. A workload and a model zoo. TextMatchingBench is the synthetic
	// stand-in for the paper's bank Q&A system: a binary text matching
	// task served by BiLSTM / RoBERTa / BERT-like models.
	ds, models := schemble.TextMatchingBench(42)
	fmt.Printf("dataset: %s, %d samples; ensemble of %d models\n",
		ds.Name, len(ds.Samples), len(models))

	// 2. Fit the framework: calibration, discrepancy scorer, difficulty
	// predictor, reward profile, DP scheduler.
	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: 42})

	// 3. Inspect a query: full-ensemble output and estimated difficulty.
	q := fw.ServingPool()[0]
	out := fw.PredictFull(q)
	fmt.Printf("sample %d: ensemble P(match)=%.3f, predicted difficulty=%.3f\n",
		q.ID, out.Probs[1], fw.Difficulty(q))
	fmt.Printf("  best subset at that difficulty: %v (reward %.3f)\n",
		fw.BestSubset(fw.Difficulty(q), 0),
		fw.Reward(fw.Difficulty(q), fw.BestSubset(fw.Difficulty(q), 0)))

	// 4. Serve a 40 q/s burst with 150ms deadlines — beyond what the full
	// ensemble can sustain — and compare deadline miss rates.
	tr := fw.PoissonTrace(40, 2000, 150*time.Millisecond, 1)
	sch, _ := fw.Simulate(schemble.SimOptions{Trace: tr})
	orig, _ := fw.SimulateOriginal(schemble.SimOptions{Trace: tr})

	fmt.Printf("\n%-10s %8s %8s %10s\n", "pipeline", "Acc(%)", "DMR(%)", "mean |s|")
	fmt.Printf("%-10s %8.1f %8.1f %10s\n", "Original",
		100*orig.Accuracy, 100*orig.DMR, "3.00")
	fmt.Printf("%-10s %8.1f %8.1f %10.2f\n", "Schemble",
		100*sch.Accuracy, 100*sch.DMR, sch.MeanSubsetSize)
	fmt.Println("\nSchemble schedules fewer models for easy queries under load,")
	fmt.Println("serving far more queries before their deadlines.")
}
