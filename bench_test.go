package schemble

// The benchmark harness regenerates every table and figure of the paper.
// Each BenchmarkFig*/BenchmarkTable* runs its experiment at full size
// through the shared registry in internal/experiments and prints the
// resulting table once (so `go test -bench=. -benchmem` leaves the full
// reproduction in its output); repeated iterations hit the experiment
// cache, so reported ns/op after the first iteration reflect retrieval,
// not recomputation. Micro-benchmarks for the DP scheduler kernel itself
// are at the bottom.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/ensemble"
	"schemble/internal/experiments"
	"schemble/internal/rng"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchPrinted sync.Map
)

func getBenchEnv() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(7, os.Getenv("SCHEMBLE_BENCH_QUICK") != "")
	})
	return benchEnv
}

// runExperiment executes the experiment once per iteration (cached after
// the first) and prints its table a single time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	env := getBenchEnv()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(env, id)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := benchPrinted.LoadOrStore(id, true); !done {
			fmt.Println()
			tab.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFig1aTrafficDMR(b *testing.B)           { runExperiment(b, "fig1a") }
func BenchmarkFig1bEnsemblePerf(b *testing.B)         { runExperiment(b, "fig1b") }
func BenchmarkFig4aScoreDistribution(b *testing.B)    { runExperiment(b, "fig4a") }
func BenchmarkFig4bBinAccuracy(b *testing.B)          { runExperiment(b, "fig4b") }
func BenchmarkFig5PreferenceCorrelation(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6TextMatching(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig7VehicleCounting(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8ImageRetrieval(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkTable1Overall(b *testing.B)             { runExperiment(b, "tab1") }
func BenchmarkTable2Latency(b *testing.B)             { runExperiment(b, "tab2") }
func BenchmarkFig9TimeSegments(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10DistributionShift(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11Tradeoff(b *testing.B)             { runExperiment(b, "fig11") }
func BenchmarkFig12Schedulers(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13Overhead(b *testing.B)             { runExperiment(b, "fig13") }
func BenchmarkFig14SegmentsAccDMR(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15TradeoffOthers(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16OfflineBudget(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17SchedulersVC(b *testing.B)         { runExperiment(b, "fig17") }
func BenchmarkFig18SchedulersIR(b *testing.B)         { runExperiment(b, "fig18") }
func BenchmarkFig19SchedulersBursty(b *testing.B)     { runExperiment(b, "fig19") }
func BenchmarkFig20aProfilingMSE(b *testing.B)        { runExperiment(b, "fig20a") }
func BenchmarkFig20bKNNRobustness(b *testing.B)       { runExperiment(b, "fig20b") }
func BenchmarkFig21DeltaSweep(b *testing.B)           { runExperiment(b, "fig21") }
func BenchmarkAblPrune(b *testing.B)                  { runExperiment(b, "abl-prune") }
func BenchmarkAblBuffer(b *testing.B)                 { runExperiment(b, "abl-buffer") }
func BenchmarkAblCalib(b *testing.B)                  { runExperiment(b, "abl-calib") }
func BenchmarkAblFill(b *testing.B)                   { runExperiment(b, "abl-fill") }

// --- Micro-benchmarks: the scheduling kernel itself ---

// benchRewarder is a cheap diminishing-marginal-utility reward function.
type benchRewarder struct{ m int }

func (r benchRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	u := 1.0
	sc := 0.2 + 0.6*score
	for i := 0; i < s.Size(); i++ {
		u *= sc
	}
	return 1 - u
}

// benchInstance builds a scheduling instance with n buffered queries over
// m models.
func benchInstance(n, m int, seed uint64) ([]core.QueryInfo, []time.Duration, []time.Duration) {
	src := rng.New(seed)
	queries := make([]core.QueryInfo, n)
	for i := range queries {
		queries[i] = core.QueryInfo{
			ID:       i,
			Arrival:  time.Duration(src.Intn(50)) * time.Millisecond,
			Deadline: time.Duration(100+src.Intn(200)) * time.Millisecond,
			Score:    src.Float64(),
		}
	}
	avail := make([]time.Duration, m)
	exec := make([]time.Duration, m)
	for k := range exec {
		avail[k] = time.Duration(src.Intn(40)) * time.Millisecond
		exec[k] = time.Duration(20+src.Intn(70)) * time.Millisecond
	}
	return queries, avail, exec
}

func benchmarkScheduler(b *testing.B, s core.Scheduler, n, m int) {
	queries, avail, exec := benchInstance(n, m, 42)
	r := benchRewarder{m}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(0, queries, core.SingleReplica(avail), exec, r)
	}
}

func BenchmarkDPSchedule4Queries(b *testing.B)  { benchmarkScheduler(b, &core.DP{Delta: 0.01}, 4, 3) }
func BenchmarkDPSchedule8Queries(b *testing.B)  { benchmarkScheduler(b, &core.DP{Delta: 0.01}, 8, 3) }
func BenchmarkDPSchedule16Queries(b *testing.B) { benchmarkScheduler(b, &core.DP{Delta: 0.01}, 16, 3) }
func BenchmarkDPScheduleDelta001(b *testing.B) {
	benchmarkScheduler(b, &core.DP{Delta: 0.001}, 8, 3)
}
func BenchmarkDPScheduleDelta1(b *testing.B) { benchmarkScheduler(b, &core.DP{Delta: 0.1}, 8, 3) }
func BenchmarkDPScheduleUnpruned(b *testing.B) {
	benchmarkScheduler(b, &core.DP{Delta: 0.01, DisablePrune: true}, 8, 3)
}
func BenchmarkGreedyEDFSchedule16(b *testing.B) {
	benchmarkScheduler(b, &core.Greedy{Order: core.EDF}, 16, 3)
}

// BenchmarkPredictorInference measures the discrepancy predictor's forward
// pass (the per-query cost the paper reports as ~6.5% of ensemble time).
func BenchmarkPredictorInference(b *testing.B) {
	env := getBenchEnv()
	a := env.TextMatching()
	s := a.Serve[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Predictor.Predict(s)
	}
}

// BenchmarkEnsemblePredict measures a full synthetic-ensemble inference
// (all base models plus aggregation).
func BenchmarkEnsemblePredict(b *testing.B) {
	env := getBenchEnv()
	a := env.TextMatching()
	s := a.Serve[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Ensemble.PredictFull(s)
	}
}

func BenchmarkAblFastPath(b *testing.B) { runExperiment(b, "abl-fastpath") }

func BenchmarkAblTraffic(b *testing.B) { runExperiment(b, "abl-traffic") }

func BenchmarkAblBatch(b *testing.B) { runExperiment(b, "abl-batch") }
