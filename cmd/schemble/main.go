// Command schemble regenerates the paper's tables and figures.
//
// Usage:
//
//	schemble list                 # list experiment ids
//	schemble exp -id fig6         # run one experiment
//	schemble exp -id all          # run everything (slow)
//	schemble exp -id tab1 -quick  # reduced sizes for a fast look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"schemble/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, s := range experiments.All {
			fmt.Printf("%-10s %s\n", s.ID, s.Title)
		}
	case "exp":
		fs := flag.NewFlagSet("exp", flag.ExitOnError)
		id := fs.String("id", "", "experiment id (or 'all')")
		seed := fs.Uint64("seed", 7, "environment seed")
		quick := fs.Bool("quick", false, "reduced dataset/trace sizes")
		format := fs.String("format", "text", "text | json | csv")
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		if *id == "" {
			fmt.Fprintln(os.Stderr, "exp: -id is required")
			os.Exit(2)
		}
		emit := func(tab *experiments.Table) {
			switch *format {
			case "json":
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(tab); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			case "csv":
				if err := tab.FprintCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			default:
				tab.Fprint(os.Stdout)
			}
		}
		env := experiments.NewEnv(*seed, *quick)
		if *id == "all" {
			for _, s := range experiments.All {
				emit(s.Run(env))
				fmt.Println()
			}
			return
		}
		tab, err := experiments.Run(env, *id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(tab)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  schemble list
  schemble exp -id <experiment|all> [-seed N] [-quick]`)
}
