// Command tracegen generates query arrival traces as CSV on stdout:
// columns sample_idx, arrival_us, deadline_us, class (class is empty for
// classless kinds).
//
// Usage:
//
//	tracegen -kind oneday -deadline 100ms > day.csv
//	tracegen -kind poisson -rate 40 -n 5000 -deadline 150ms > burst.csv
//	tracegen -kind flashcrowd -rate 20 -peak 5 -horizon 60s \
//	    -classmix "gold:0.2:300ms,silver:0.3:300ms,bronze:0.5:500ms" > crowd.csv
//	tracegen -kind burst -rate 5 -burst-size 40 -burst-period 5s > bursts.csv
//	tracegen -kind zipf -rate 80 -n 10000 -zipf-s 1.2 > popular.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/trace"
)

// parseClassMix turns the -classmix flag into a class mixture. The format
// is a comma list of name:share:deadline entries, e.g.
// "gold:0.2:300ms,bronze:0.8:1s".
func parseClassMix(s string) ([]trace.ClassMix, error) {
	var out []trace.ClassMix
	for i, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("entry %d (%q): want name:share:deadline", i, entry)
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("entry %d (%q): bad share: %v", i, entry, err)
		}
		dl, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("entry %d (%q): bad deadline: %v", i, entry, err)
		}
		out = append(out, trace.ClassMix{Name: parts[0], Share: share, Deadline: dl})
	}
	return out, nil
}

func main() {
	kind := flag.String("kind", "poisson", "poisson | oneday | flashcrowd | burst | zipf")
	rate := flag.Float64("rate", 40, "poisson/zipf/flashcrowd/burst: background arrivals per second")
	n := flag.Int("n", 5000, "poisson/zipf: number of arrivals")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "constant relative deadline (poisson/oneday/zipf)")
	hourSeconds := flag.Float64("hourseconds", 8, "oneday: virtual seconds per hour")
	horizon := flag.Duration("horizon", 60*time.Second, "flashcrowd/burst: trace length")
	classMix := flag.String("classmix", "gold:0.2:300ms,silver:0.3:300ms,bronze:0.5:500ms",
		"flashcrowd/burst: class mixture as name:share:deadline,...")
	peak := flag.Float64("peak", 5, "flashcrowd: peak rate as a multiple of -rate")
	crowdClass := flag.String("crowd-class", "", "flashcrowd: class the crowd arrives as (empty = last class in -classmix)")
	burstSize := flag.Int("burst-size", 40, "burst: simultaneous arrivals per burst, split across classes by share")
	burstPeriod := flag.Duration("burst-period", 5*time.Second, "burst: spacing between bursts")
	burstJitter := flag.Duration("burst-jitter", 0, "burst: uniform jitter applied to each burst instant")
	zipfS := flag.Float64("zipf-s", 0, "zipf: popularity exponent (0 = package default)")
	zipfV := flag.Float64("zipf-v", 0, "zipf: rank offset (0 = package default)")
	pool := flag.Int("pool", 2000, "sample pool size")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	samples := dataset.TextMatching(dataset.Config{N: *pool, Seed: *seed}).Samples
	mix, err := parseClassMix(*classMix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-classmix: %v\n", err)
		os.Exit(2)
	}
	var tr *trace.Trace
	switch *kind {
	case "poisson":
		tr = trace.Poisson(trace.PoissonConfig{
			RatePerSec: *rate, N: *n, Samples: samples,
			Deadline: trace.ConstantDeadline(*deadline), Seed: *seed,
		})
	case "oneday":
		tr = trace.OneDay(trace.OneDayConfig{
			Samples:     samples,
			Deadline:    trace.ConstantDeadline(*deadline),
			HourSeconds: *hourSeconds,
			Seed:        *seed,
		})
	case "flashcrowd":
		tr = trace.FlashCrowd(trace.FlashCrowdConfig{
			BackgroundRate: *rate,
			Classes:        mix,
			CrowdClass:     *crowdClass,
			PeakFactor:     *peak,
			Horizon:        *horizon,
			Samples:        samples,
			Seed:           *seed,
		})
	case "zipf":
		tr = trace.Zipfian(trace.ZipfianConfig{
			RatePerSec: *rate, N: *n, Samples: samples,
			Deadline: trace.ConstantDeadline(*deadline),
			S:        *zipfS, V: *zipfV, Seed: *seed,
		})
	case "burst":
		tr = trace.MultiClassBurst(trace.MultiClassBurstConfig{
			BackgroundRate: *rate,
			Classes:        mix,
			BurstSize:      *burstSize,
			Period:         *burstPeriod,
			Jitter:         *burstJitter,
			Horizon:        *horizon,
			Samples:        samples,
			Seed:           *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "sample_idx,arrival_us,deadline_us,class")
	for _, a := range tr.Arrivals {
		fmt.Fprintf(w, "%d,%d,%d,%s\n", a.SampleIdx,
			a.At.Microseconds(), a.Deadline.Microseconds(), a.Class)
	}
	fmt.Fprintf(os.Stderr, "generated %d arrivals over %v\n", tr.N(), tr.Horizon)
}
