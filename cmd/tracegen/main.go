// Command tracegen generates query arrival traces as CSV on stdout:
// columns sample_idx, arrival_us, deadline_us.
//
// Usage:
//
//	tracegen -kind oneday -deadline 100ms > day.csv
//	tracegen -kind poisson -rate 40 -n 5000 -deadline 150ms > burst.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/trace"
)

func main() {
	kind := flag.String("kind", "poisson", "poisson | oneday")
	rate := flag.Float64("rate", 40, "poisson: arrivals per second")
	n := flag.Int("n", 5000, "poisson: number of arrivals")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "constant relative deadline")
	hourSeconds := flag.Float64("hourseconds", 8, "oneday: virtual seconds per hour")
	pool := flag.Int("pool", 2000, "sample pool size")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	samples := dataset.TextMatching(dataset.Config{N: *pool, Seed: *seed}).Samples
	var tr *trace.Trace
	switch *kind {
	case "poisson":
		tr = trace.Poisson(trace.PoissonConfig{
			RatePerSec: *rate, N: *n, Samples: samples,
			Deadline: trace.ConstantDeadline(*deadline), Seed: *seed,
		})
	case "oneday":
		tr = trace.OneDay(trace.OneDayConfig{
			Samples:     samples,
			Deadline:    trace.ConstantDeadline(*deadline),
			HourSeconds: *hourSeconds,
			Seed:        *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "sample_idx,arrival_us,deadline_us")
	for _, a := range tr.Arrivals {
		fmt.Fprintf(w, "%d,%d,%d\n", a.SampleIdx,
			a.At.Microseconds(), a.Deadline.Microseconds())
	}
	fmt.Fprintf(os.Stderr, "generated %d arrivals over %v\n", tr.N(), tr.Horizon)
}
