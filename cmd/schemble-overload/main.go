// Command schemble-overload soaks the classed serving stack at 1x, 2x and
// 5x of the deployment's bottleneck capacity and emits the
// machine-readable BENCH_overload.json robustness-trajectory file the
// ROADMAP tracks.
//
// Each tier offers a steady three-class mixture (gold/silver/bronze with
// descending priority) to the deterministic simulator with admission
// control and the degradation ladder enabled, then reports per-class SLO
// attainment, shed rate and deadline-miss rate plus aggregate goodput.
// Two invariants are asserted on every run, so the target doubles as an
// overload-survival gate:
//
//   - sheds are priority-ordered: at every tier, no class is shed harder
//     than a lower-priority class (beyond a small tolerance);
//   - the top class survives: its SLO attainment at 5x stays within the
//     configured floor.
//
// Usage:
//
//	schemble-overload [-quick] [-out BENCH_overload.json]
//	                  [-baseline BENCH_overload.json] [-max-slo-drop 0.05]
//
// -quick shrinks the pipeline fit and the soak horizon for CI. When
// -baseline names an existing result file, the run fails (exit 1) if any
// tier's gold-class SLO attainment drops more than -max-slo-drop below
// the baseline; the baseline is read before -out is rewritten, so both
// may name the same file. The output contains no wall-clock timestamps:
// two runs of the same tree produce identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/qos"
	"schemble/internal/rng"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// report is the BENCH_overload.json schema ("schemble-overload/v1").
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Quick  bool   `json:"quick"`
	// CapacityPerSec is the derived bottleneck service rate the tiers are
	// multiples of.
	CapacityPerSec float64 `json:"capacity_per_sec"`
	HorizonSec     float64 `json:"horizon_sec"`
	Tiers          []tier  `json:"tiers"`
}

type tier struct {
	// Load is the offered-load multiple of capacity (1, 2, 5).
	Load        float64 `json:"load"`
	OfferedRate float64 `json:"offered_rate_per_sec"`
	Arrivals    int     `json:"arrivals"`
	// GoodputPerSec counts in-deadline completions per virtual second.
	GoodputPerSec float64      `json:"goodput_per_sec"`
	Classes       []classStats `json:"classes"`
}

type classStats struct {
	Name      string `json:"name"`
	Priority  int    `json:"priority"`
	Submitted int    `json:"submitted"`
	Served    int    `json:"served"`
	Degraded  int    `json:"degraded"`
	Missed    int    `json:"missed"`
	Rejected  int    `json:"rejected"`
	// SLOAttainment is (Served+Degraded)/(Served+Degraded+Missed) — the
	// fraction of completed outcomes that met the deadline (1 when none
	// completed). ShedRate is Rejected/Submitted; DMR is
	// Missed/(Submitted-Rejected).
	SLOAttainment float64 `json:"slo_attainment"`
	ShedRate      float64 `json:"shed_rate"`
	DMR           float64 `json:"dmr"`
}

// benchClasses is the fixed three-tier mixture every run uses.
func benchClasses() []qos.Class {
	return []qos.Class{
		{Name: "gold", Priority: 2, Deadline: 400 * time.Millisecond, Weight: 3},
		{Name: "silver", Priority: 1, Deadline: 400 * time.Millisecond, Weight: 2},
		{Name: "bronze", Priority: 0, Deadline: 600 * time.Millisecond, Weight: 1},
	}
}

// classShares is each class's fraction of offered traffic (most of the
// overload arrives as bronze, the realistic flash-crowd shape).
var classShares = []float64{0.2, 0.3, 0.5}

// steadyClassedTrace builds one merged Poisson stream at the given
// aggregate rate, assigning each arrival a class by share. Deterministic
// per (rate, horizon, seed).
func steadyClassedTrace(rate float64, classes []qos.Class, horizon time.Duration,
	samples []*dataset.Sample, seed uint64) *trace.Trace {
	src := rng.New(seed ^ 0x0ad5)
	var arrivals []trace.Arrival
	var now time.Duration
	for {
		now += time.Duration(src.Exponential(rate) * float64(time.Second))
		if now >= horizon {
			break
		}
		u := src.Float64()
		ci := len(classes) - 1
		acc := 0.0
		for i, share := range classShares {
			acc += share
			if u < acc {
				ci = i
				break
			}
		}
		arrivals = append(arrivals, trace.Arrival{
			SampleIdx: src.Intn(len(samples)),
			At:        now,
			Deadline:  now + classes[ci].Deadline,
			Class:     classes[ci].Name,
		})
	}
	return &trace.Trace{Arrivals: arrivals, Horizon: horizon}
}

// summarizeTier folds per-query records into the per-class stats.
func summarizeTier(load, rate float64, classes []qos.Class, recs []metrics.Record,
	horizon time.Duration) tier {
	t := tier{Load: load, OfferedRate: rate, Arrivals: len(recs)}
	byName := map[string]*classStats{}
	for _, c := range classes {
		t.Classes = append(t.Classes, classStats{Name: c.Name, Priority: c.Priority})
	}
	for i := range t.Classes {
		byName[t.Classes[i].Name] = &t.Classes[i]
	}
	good := 0
	for _, r := range recs {
		cs := byName[r.Class]
		if cs == nil {
			continue
		}
		cs.Submitted++
		switch {
		case r.Rejected:
			cs.Rejected++
		case r.Missed:
			cs.Missed++
		case r.Degraded:
			cs.Degraded++
			good++
		default:
			cs.Served++
			good++
		}
	}
	t.GoodputPerSec = float64(good) / horizon.Seconds()
	for i := range t.Classes {
		cs := &t.Classes[i]
		cs.SLOAttainment = 1
		if done := cs.Served + cs.Degraded + cs.Missed; done > 0 {
			cs.SLOAttainment = float64(cs.Served+cs.Degraded) / float64(done)
		}
		if cs.Submitted > 0 {
			cs.ShedRate = float64(cs.Rejected) / float64(cs.Submitted)
		}
		if accepted := cs.Submitted - cs.Rejected; accepted > 0 {
			cs.DMR = float64(cs.Missed) / float64(accepted)
		}
	}
	return t
}

func main() {
	out := flag.String("out", "BENCH_overload.json", "output path (- for stdout)")
	quick := flag.Bool("quick", false, "shrink the pipeline fit and soak horizon for CI")
	baselinePath := flag.String("baseline", "", "compare against this prior BENCH_overload.json and fail on SLO regression")
	maxSLODrop := flag.Float64("max-slo-drop", 0.05, "largest tolerated drop in gold-class SLO attainment vs the baseline, per tier")
	goldFloor := flag.Float64("gold-floor", 0.85, "hard floor on gold-class SLO attainment at the 5x tier")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	pipeCfg := pipeline.Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 4000, Seed: *seed}),
		Models:  model.TextMatchingModels(*seed),
		Seed:    *seed,
	}
	horizon := 120 * time.Second
	if *quick {
		pipeCfg.Dataset = dataset.TextMatching(dataset.Config{N: 1200, Seed: *seed})
		pipeCfg.PredictorEpochs = 25
		horizon = 30 * time.Second
	}
	fmt.Fprintln(os.Stderr, "fitting pipeline...")
	arts := pipeline.Build(pipeCfg)

	// Bottleneck capacity with one replica per model, mirroring the
	// serve/sim default the admission controller derives.
	capacity := 0.0
	for _, md := range arts.Ensemble.Models {
		lat := md.MeanLatency().Seconds()
		if lat <= 0 {
			continue
		}
		c := 1 / lat
		if capacity <= 0 || c < capacity {
			capacity = c
		}
	}
	classes := benchClasses()

	rep := report{
		Schema:         "schemble-overload/v1",
		Go:             runtime.Version(),
		Quick:          *quick,
		CapacityPerSec: capacity,
		HorizonSec:     horizon.Seconds(),
	}
	failed := false
	for _, load := range []float64{1, 2, 5} {
		rate := load * capacity
		tr := steadyClassedTrace(rate, classes, horizon, arts.Serve, *seed)
		recs := sim.Run(sim.Config{
			Ensemble:   arts.Ensemble,
			Refs:       arts.Refs,
			Scorer:     arts.Scorer,
			Scheduler:  &core.DP{Delta: 0.01},
			Rewarder:   arts.Profile,
			Estimator:  arts.Predictor,
			ScoreDelay: arts.Predictor.InferCost,
			Classes:    classes,
			Seed:       *seed,
		}, tr, arts.Serve)
		t := summarizeTier(load, rate, classes, recs, horizon)
		rep.Tiers = append(rep.Tiers, t)
		fmt.Fprintf(os.Stderr, "load %.0fx (%.1f q/s, %d arrivals): goodput %.1f/s\n",
			load, rate, t.Arrivals, t.GoodputPerSec)
		for _, cs := range t.Classes {
			fmt.Fprintf(os.Stderr, "  %-7s slo %.3f shed %.3f dmr %.3f (n=%d)\n",
				cs.Name, cs.SLOAttainment, cs.ShedRate, cs.DMR, cs.Submitted)
		}
		// Gate: sheds must be priority-ordered — a class may never be shed
		// harder than a lower-priority one (classes are declared
		// highest-priority first; 2% tolerance absorbs bucket-burst noise).
		for i := 0; i+1 < len(t.Classes); i++ {
			if t.Classes[i].ShedRate > t.Classes[i+1].ShedRate+0.02 {
				fmt.Fprintf(os.Stderr, "FAIL: %s shed harder (%.3f) than lower-priority %s (%.3f) at %.0fx\n",
					t.Classes[i].Name, t.Classes[i].ShedRate,
					t.Classes[i+1].Name, t.Classes[i+1].ShedRate, load)
				failed = true
			}
		}
	}
	// Gate: the top class survives the 5x tier.
	last := rep.Tiers[len(rep.Tiers)-1]
	if gold := last.Classes[0].SLOAttainment; gold < *goldFloor {
		fmt.Fprintf(os.Stderr, "FAIL: gold SLO attainment %.3f at 5x below floor %.3f\n",
			gold, *goldFloor)
		failed = true
	}

	// Regression gate against a committed baseline (read before -out is
	// rewritten, so both may name the same file).
	if *baselinePath != "" {
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var base report
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "baseline %s unreadable: %v\n", *baselinePath, err)
			} else {
				for i, bt := range base.Tiers {
					if i >= len(rep.Tiers) || len(bt.Classes) == 0 {
						continue
					}
					cur, prev := rep.Tiers[i].Classes[0].SLOAttainment, bt.Classes[0].SLOAttainment
					if cur < prev-*maxSLODrop {
						fmt.Fprintf(os.Stderr,
							"FAIL: gold SLO attainment at %.0fx regressed %.3f -> %.3f (tolerance %.3f)\n",
							bt.Load, prev, cur, *maxSLODrop)
						failed = true
					}
				}
			}
		} else {
			fmt.Fprintf(os.Stderr, "no baseline at %s; skipping regression gate\n", *baselinePath)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
