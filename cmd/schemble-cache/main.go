// Command schemble-cache soaks the difficulty-gated result cache under a
// Zipf-popularity query stream at twice the deployment's bottleneck
// capacity and emits the machine-readable BENCH_cache.json
// cache-trajectory file the ROADMAP tracks.
//
// The same seeded trace runs twice through the deterministic simulator —
// once cache-off as the reference, once cache-on — so every delta in the
// report is attributable to the cache alone. Two invariants are asserted
// on every run, so the target doubles as a cache-effectiveness gate:
//
//   - the cache earns its keep: the hit rate over admitted lookups stays
//     above the -min-hit-rate floor (Zipf head traffic must hit);
//   - caching never costs deadlines: the cache-on deadline-miss rate stays
//     within -max-dmr-delta of the cache-off reference.
//
// Usage:
//
//	schemble-cache [-quick] [-out BENCH_cache.json]
//	               [-baseline BENCH_cache.json] [-min-hit-rate 0.3]
//
// -quick shrinks the pipeline fit and the soak horizon for CI. When
// -baseline names an existing result file, the run fails (exit 1) if the
// hit rate drops more than -max-hit-drop below the baseline; the baseline
// is read before -out is rewritten, so both may name the same file. The
// output contains no wall-clock timestamps: two runs of the same tree
// produce identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"schemble/internal/cluster"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// report is the BENCH_cache.json schema ("schemble-cache/v1").
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Quick  bool   `json:"quick"`
	// CapacityPerSec is the derived bottleneck service rate; the soak
	// offers twice it.
	CapacityPerSec float64 `json:"capacity_per_sec"`
	OfferedRate    float64 `json:"offered_rate_per_sec"`
	HorizonSec     float64 `json:"horizon_sec"`
	Arrivals       int     `json:"arrivals"`
	// Regions is the k-means centroid count keying the cache;
	// DifficultyMax is the admission threshold actually used (derived from
	// the score distribution when -cache-difficulty-max is 0).
	Regions       int     `json:"regions"`
	CacheCapacity int     `json:"cache_capacity"`
	DifficultyMax float64 `json:"difficulty_max"`

	// Off is the cache-off reference run; On is the cache-on run over the
	// identical trace and seed.
	Off run `json:"off"`
	On  run `json:"on"`

	HitRate float64 `json:"hit_rate"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Bypass  uint64  `json:"bypasses"`
	Fills   uint64  `json:"fills"`
	Evicted uint64  `json:"evictions"`
}

// run is one simulator pass's outcome aggregates.
type run struct {
	// ServedPerSec counts in-deadline completions per virtual second
	// (cached answers included — a hit is a served query).
	ServedPerSec float64 `json:"served_per_sec"`
	DMR          float64 `json:"dmr"`
	Accuracy     float64 `json:"accuracy"`
	Missed       int     `json:"missed"`
	Rejected     int     `json:"rejected"`
	CachedCount  int     `json:"cached,omitempty"`
}

func summarizeRun(recs []metrics.Record, horizon time.Duration) run {
	s := metrics.Summarize(recs)
	cached := 0
	for _, r := range recs {
		if r.Cached {
			cached++
		}
	}
	return run{
		ServedPerSec: float64(s.N-s.Missed-s.Rejected) / horizon.Seconds(),
		DMR:          s.DMR,
		Accuracy:     s.Accuracy,
		Missed:       s.Missed,
		Rejected:     s.Rejected,
		CachedCount:  cached,
	}
}

func main() {
	out := flag.String("out", "BENCH_cache.json", "output path (- for stdout)")
	quick := flag.Bool("quick", false, "shrink the pipeline fit and soak horizon for CI")
	baselinePath := flag.String("baseline", "", "compare against this prior BENCH_cache.json and fail on hit-rate regression")
	minHitRate := flag.Float64("min-hit-rate", 0.3, "hard floor on the cache hit rate")
	maxDMRDelta := flag.Float64("max-dmr-delta", 0.02, "largest tolerated cache-on DMR excess over the cache-off reference")
	maxHitDrop := flag.Float64("max-hit-drop", 0.1, "largest tolerated hit-rate drop vs the baseline (wide enough to absorb the quick-vs-full fixture gap)")
	regions := flag.Int("regions", 64, "k-means centroids keying the cache")
	cacheSize := flag.Int("cache-size", 1024, "cache entry capacity")
	difficultyMax := flag.Float64("cache-difficulty-max", 0, "admission threshold (0 = the pool's 75th-percentile predicted score)")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf popularity exponent of the soak trace")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	pipeCfg := pipeline.Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 4000, Seed: *seed}),
		Models:  model.TextMatchingModels(*seed),
		Seed:    *seed,
	}
	horizon := 120 * time.Second
	if *quick {
		pipeCfg.Dataset = dataset.TextMatching(dataset.Config{N: 1200, Seed: *seed})
		pipeCfg.PredictorEpochs = 25
		horizon = 30 * time.Second
	}
	fmt.Fprintln(os.Stderr, "fitting pipeline...")
	arts := pipeline.Build(pipeCfg)

	// Bottleneck capacity with one replica per model, mirroring the
	// serve/sim default the admission controller derives.
	capacity := 0.0
	for _, md := range arts.Ensemble.Models {
		lat := md.MeanLatency().Seconds()
		if lat <= 0 {
			continue
		}
		c := 1 / lat
		if capacity <= 0 || c < capacity {
			capacity = c
		}
	}
	rate := 2 * capacity
	n := int(rate * horizon.Seconds())

	// Derive the admission threshold from the pool's own difficulty
	// distribution when unset: the 75th percentile keeps the easy head
	// cacheable while the hardest quartile always runs the ensemble.
	dmax := *difficultyMax
	if dmax <= 0 {
		scores := make([]float64, len(arts.Serve))
		for i, s := range arts.Serve {
			scores[i] = arts.Predictor.Predict(s)
		}
		sort.Float64s(scores)
		dmax = scores[len(scores)*3/4]
	}

	points := make([][]float64, len(arts.Serve))
	for i, s := range arts.Serve {
		points[i] = s.Features
	}
	km, err := cluster.Fit(points, *regions, 30, rng.New(*seed^0xcac4e))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fitting keyer: %v\n", err)
		os.Exit(1)
	}
	cacheCfg := rcache.Config{
		Keyer:         rcache.CentroidKeyer{KM: km},
		Capacity:      *cacheSize,
		DifficultyMax: dmax,
	}

	tr := trace.Zipfian(trace.ZipfianConfig{
		RatePerSec: rate, N: n, Samples: arts.Serve,
		Deadline: trace.ConstantDeadline(400 * time.Millisecond),
		S:        *zipfS, Seed: *seed,
	})
	simCfg := func(cache rcache.Config) sim.Config {
		return sim.Config{
			Ensemble:   arts.Ensemble,
			Refs:       arts.Refs,
			Scorer:     arts.Scorer,
			Scheduler:  &core.DP{Delta: 0.01},
			Rewarder:   arts.Profile,
			Estimator:  arts.Predictor,
			ScoreDelay: arts.Predictor.InferCost,
			Cache:      cache,
			Seed:       *seed,
		}
	}
	fmt.Fprintf(os.Stderr, "soaking %d arrivals at %.1f q/s (2x capacity) cache-off...\n", n, rate)
	offRecs, _ := sim.RunStats(simCfg(rcache.Config{}), tr, arts.Serve)
	fmt.Fprintln(os.Stderr, "soaking the identical trace cache-on...")
	onRecs, snap := sim.RunStats(simCfg(cacheCfg), tr, arts.Serve)

	rep := report{
		Schema:         "schemble-cache/v1",
		Go:             runtime.Version(),
		Quick:          *quick,
		CapacityPerSec: capacity,
		OfferedRate:    rate,
		HorizonSec:     horizon.Seconds(),
		Arrivals:       n,
		Regions:        km.K(),
		CacheCapacity:  *cacheSize,
		DifficultyMax:  dmax,
		Off:            summarizeRun(offRecs, horizon),
		On:             summarizeRun(onRecs, horizon),
		HitRate:        snap.HitRate,
		Hits:           snap.Hits,
		Misses:         snap.Misses,
		Bypass:         snap.Bypasses,
		Fills:          snap.Fills,
		Evicted:        snap.Evictions,
	}
	fmt.Fprintf(os.Stderr,
		"cache-off: %.1f served/s dmr %.3f acc %.3f\ncache-on:  %.1f served/s dmr %.3f acc %.3f (%d cached, hit rate %.3f)\n",
		rep.Off.ServedPerSec, rep.Off.DMR, rep.Off.Accuracy,
		rep.On.ServedPerSec, rep.On.DMR, rep.On.Accuracy, rep.On.CachedCount, rep.HitRate)

	failed := false
	if rep.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "FAIL: hit rate %.3f below floor %.3f\n", rep.HitRate, *minHitRate)
		failed = true
	}
	if rep.On.DMR > rep.Off.DMR+*maxDMRDelta {
		fmt.Fprintf(os.Stderr, "FAIL: cache-on DMR %.3f exceeds cache-off %.3f + %.3f\n",
			rep.On.DMR, rep.Off.DMR, *maxDMRDelta)
		failed = true
	}

	// Regression gate against a committed baseline (read before -out is
	// rewritten, so both may name the same file).
	if *baselinePath != "" {
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var base report
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "baseline %s unreadable: %v\n", *baselinePath, err)
			} else if rep.HitRate < base.HitRate-*maxHitDrop {
				fmt.Fprintf(os.Stderr, "FAIL: hit rate regressed %.3f -> %.3f (tolerance %.3f)\n",
					base.HitRate, rep.HitRate, *maxHitDrop)
				failed = true
			}
		} else {
			fmt.Fprintf(os.Stderr, "no baseline at %s; skipping regression gate\n", *baselinePath)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
