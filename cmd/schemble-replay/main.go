// Command schemble-replay runs a serving simulation and writes the
// per-query record log (JSONL) for offline analysis with
// cmd/schemble-analyze.
//
//	schemble-replay -baseline schemble -rate 40 -n 3000 -out run.jsonl
//	schemble-replay -baseline original -trace oneday -out day.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

func main() {
	baseline := flag.String("baseline", "schemble", "schemble | original")
	traceKind := flag.String("trace", "poisson", "poisson | oneday")
	rate := flag.Float64("rate", 40, "poisson arrival rate (q/s)")
	n := flag.Int("n", 3000, "poisson arrivals")
	deadline := flag.Duration("deadline", 150*time.Millisecond, "per-query deadline")
	out := flag.String("out", "-", "output path (- for stdout)")
	force := flag.Bool("force", false, "force processing (no rejection)")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "fitting pipeline...")
	arts := pipeline.Build(pipeline.Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 4000, Seed: *seed}),
		Models:  model.TextMatchingModels(*seed),
		Seed:    *seed,
	})

	var tr *trace.Trace
	switch *traceKind {
	case "poisson":
		tr = trace.Poisson(trace.PoissonConfig{
			RatePerSec: *rate, N: *n, Samples: arts.Serve,
			Deadline: trace.ConstantDeadline(*deadline), Seed: *seed,
		})
	case "oneday":
		tr = trace.OneDay(trace.OneDayConfig{
			Samples: arts.Serve, Deadline: trace.ConstantDeadline(*deadline),
			Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown trace kind %q\n", *traceKind)
		os.Exit(2)
	}

	cfg := sim.Config{
		Ensemble:     arts.Ensemble,
		Refs:         arts.Refs,
		Scorer:       arts.Scorer,
		ForceProcess: *force,
		Seed:         *seed,
	}
	switch *baseline {
	case "schemble":
		cfg.Scheduler = &core.DP{Delta: 0.01}
		cfg.Rewarder = arts.Profile
		cfg.Estimator = arts.Predictor
		cfg.ScoreDelay = arts.Predictor.InferCost
	case "original":
		full := arts.Ensemble.FullSubset()
		cfg.Select = func(*dataset.Sample) ensemble.Subset { return full }
	default:
		fmt.Fprintf(os.Stderr, "unknown baseline %q\n", *baseline)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "replaying %d arrivals...\n", tr.N())
	recs := sim.Run(cfg, tr, arts.Serve)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := metrics.WriteJSONL(w, recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := metrics.Summarize(recs)
	fmt.Fprintf(os.Stderr, "done: acc %.1f%% dmr %.1f%%\n", 100*s.Accuracy, 100*s.DMR)
}
