// Command schemble-vet runs schemble's custom static analyzers — the
// determinism, outcome-taxonomy, and concurrency invariants the compiler
// cannot check — over the module. It is wired into `make lint` and CI.
//
// Usage:
//
//	schemble-vet [-only detrand,floateq] [-json] [packages]
//
// Packages default to ./..., analyzed as `go list -test` sees them
// (library and test files alike). The exit status is non-zero when any
// diagnostic survives its //schemble: annotations. -json replaces the
// human-readable lines with a JSON array of findings (always emitted,
// empty when clean) for CI artifact upload and tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"schemble/internal/analysis"
	"schemble/internal/analysis/load"
	"schemble/internal/analysis/suite"
)

// jsonDiag is the machine-readable form of one finding.
type jsonDiag struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schemble-vet [flags] [packages]\n\nanalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	full := true
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			fmt.Fprintf(os.Stderr, "schemble-vet: unknown analyzer(s): %s\n", strings.Join(mapKeys(want), ", "))
			os.Exit(2)
		}
		analyzers, full = sel, false
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemble-vet: %v\n", err)
		os.Exit(2)
	}
	// The annotation grammar check validates against the whole suite's
	// directive set even under -only, so an annotation owned by an
	// unselected analyzer is not misreported as unknown.
	var knownDirectives []string
	for _, a := range suite.Analyzers() {
		knownDirectives = append(knownDirectives, a.Directives...)
	}
	diags, err := analysis.Run(units, analyzers, analysis.Options{
		// Stale-annotation detection needs every directive's owner to
		// have run, so it is only meaningful for the full suite.
		ReportUnused:    full,
		KnownDirectives: knownDirectives,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemble-vet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:      d.Pos.Filename,
				Line:      d.Pos.Line,
				Col:       d.Pos.Column,
				Analyzer:  d.Analyzer,
				Message:   d.Message,
				Directive: d.Directive,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "schemble-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schemble-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func mapKeys(m map[string]bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
