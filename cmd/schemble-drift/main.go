// Command schemble-drift soaks the online-adaptation layer under a
// drifting workload and emits the machine-readable BENCH_drift.json
// drift-resilience file the ROADMAP tracks.
//
// The soak composes the two drift modes the adaptation layer exists for:
// a latency ramp (every model slows to -drift-factor times its profiled
// speed across the middle of the horizon, the thermal-throttling /
// co-tenant-pressure shape) and a difficulty shift (the arrival mix
// moves from the pool's easy tail to its hard tail, staling the frozen
// score calibration). The same seeded trace runs twice through the
// deterministic simulator — once with frozen profiles as the reference,
// once with adaptation on — so every delta in the report is attributable
// to adaptation alone. One invariant is asserted on every run, so the
// target doubles as an adaptation-effectiveness gate:
//
//   - adaptation earns its keep: the adapt-on deadline-miss rate stays
//     strictly below the frozen-profile reference under drift.
//
// Usage:
//
//	schemble-drift [-quick] [-out BENCH_drift.json]
//	               [-baseline BENCH_drift.json] [-drift-factor 1.8]
//
// -quick shrinks the pipeline fit and the soak horizon for CI. When
// -baseline names an existing result file, the run fails (exit 1) if the
// adapt-on DMR rises more than -max-dmr-rise above the baseline; the
// baseline is read before -out is rewritten, so both may name the same
// file. The output contains no wall-clock timestamps: two runs of the
// same tree produce identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"schemble/internal/adapt"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// report is the BENCH_drift.json schema ("schemble-drift/v1").
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Quick  bool   `json:"quick"`
	// CapacityPerSec is the derived pre-drift bottleneck service rate;
	// the soak offers OfferedRate against a fleet that slows to
	// DriftFactor times its profiled latency mid-run.
	CapacityPerSec float64 `json:"capacity_per_sec"`
	OfferedRate    float64 `json:"offered_rate_per_sec"`
	HorizonSec     float64 `json:"horizon_sec"`
	Arrivals       int     `json:"arrivals"`
	DriftFactor    float64 `json:"drift_factor"`
	// RampStartSec/RampEndSec bound the latency ramp; the difficulty
	// shift runs over the same window.
	RampStartSec float64 `json:"ramp_start_sec"`
	RampEndSec   float64 `json:"ramp_end_sec"`

	// Frozen is the reference run planning with frozen profiles; Adapt
	// is the adaptation-on run over the identical trace and seed.
	Frozen run `json:"frozen"`
	Adapt  run `json:"adapt"`

	// Adaptation-layer aggregates from the adapt-on run.
	Inflation     []float64 `json:"inflation"`
	LatencyEvents uint64    `json:"latency_events"`
	ScoreEvents   uint64    `json:"score_events"`
	RecalEpochs   uint64    `json:"recal_epochs"`
	RecalSwaps    uint64    `json:"recal_swaps"`
}

// run is one simulator pass's outcome aggregates.
type run struct {
	ServedPerSec float64 `json:"served_per_sec"`
	DMR          float64 `json:"dmr"`
	Accuracy     float64 `json:"accuracy"`
	Missed       int     `json:"missed"`
	Rejected     int     `json:"rejected"`
}

func summarizeRun(recs []metrics.Record, horizon time.Duration) run {
	s := metrics.Summarize(recs)
	return run{
		ServedPerSec: float64(s.N-s.Missed-s.Rejected) / horizon.Seconds(),
		DMR:          s.DMR,
		Accuracy:     s.Accuracy,
		Missed:       s.Missed,
		Rejected:     s.Rejected,
	}
}

func main() {
	out := flag.String("out", "BENCH_drift.json", "output path (- for stdout)")
	quick := flag.Bool("quick", false, "shrink the pipeline fit and soak horizon for CI")
	baselinePath := flag.String("baseline", "", "compare against this prior BENCH_drift.json and fail on DMR regression")
	maxDMRRise := flag.Float64("max-dmr-rise", 0.05, "largest tolerated adapt-on DMR rise vs the baseline (wide enough to absorb the quick-vs-full fixture gap)")
	driftFactor := flag.Float64("drift-factor", 1.8, "latency multiplier every model ramps to mid-soak")
	rateFactor := flag.Float64("rate-factor", 0.9, "offered load as a fraction of the pre-drift bottleneck capacity")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	pipeCfg := pipeline.Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 4000, Seed: *seed}),
		Models:  model.TextMatchingModels(*seed),
		Seed:    *seed,
	}
	horizon := 120 * time.Second
	if *quick {
		pipeCfg.Dataset = dataset.TextMatching(dataset.Config{N: 1200, Seed: *seed})
		pipeCfg.PredictorEpochs = 25
		horizon = 30 * time.Second
	}
	fmt.Fprintln(os.Stderr, "fitting pipeline...")
	arts := pipeline.Build(pipeCfg)

	// Pre-drift bottleneck capacity with one replica per model, mirroring
	// the serve/sim default the admission controller derives. The ramp
	// shrinks the real capacity by drift-factor mid-run, so an offered
	// rate below 1x still saturates the fleet once drift sets in.
	capacity := 0.0
	for _, md := range arts.Ensemble.Models {
		lat := md.MeanLatency().Seconds()
		if lat <= 0 {
			continue
		}
		c := 1 / lat
		if capacity <= 0 || c < capacity {
			capacity = c
		}
	}
	rate := *rateFactor * capacity
	n := int(rate * horizon.Seconds())
	rampStart := horizon / 5
	rampEnd := horizon * 7 / 10

	// Easy/hard pools by predicted difficulty: the bottom and top thirds
	// of the serving pool. The arrival mix shifts from all-easy to
	// all-hard across the ramp window, staling the frozen calibration.
	type scored struct {
		idx int
		s   float64
	}
	ranked := make([]scored, len(arts.Serve))
	for i, s := range arts.Serve {
		ranked[i] = scored{idx: i, s: arts.Predictor.Predict(s)}
	}
	sort.Slice(ranked, func(a, b int) bool {
		//schemble:floateq-ok exact-inequality tie-break: equal predictions fall through to the deterministic index order
		if ranked[a].s != ranked[b].s {
			return ranked[a].s < ranked[b].s
		}
		return ranked[a].idx < ranked[b].idx
	})
	third := len(ranked) / 3
	easy := make([]int, third)
	hard := make([]int, third)
	for i := 0; i < third; i++ {
		easy[i] = ranked[i].idx
		hard[i] = ranked[len(ranked)-third+i].idx
	}

	tr := trace.DifficultyShift(trace.DifficultyShiftConfig{
		RatePerSec: rate, N: n, Samples: arts.Serve,
		EasyIdx: easy, HardIdx: hard,
		ShiftStart: rampStart, ShiftEnd: rampEnd,
		Deadline: trace.ConstantDeadline(400 * time.Millisecond),
		Seed:     *seed,
	})
	drift := trace.RampDrift(rampStart, rampEnd, 1, *driftFactor)
	simCfg := func(a adapt.Config) sim.Config {
		return sim.Config{
			Ensemble:   arts.Ensemble,
			Refs:       arts.Refs,
			Scorer:     arts.Scorer,
			Scheduler:  &core.DP{Delta: 0.01},
			Rewarder:   arts.Profile,
			Estimator:  arts.Predictor,
			ScoreDelay: arts.Predictor.InferCost,
			Drift:      drift,
			Adapt:      a,
			Seed:       *seed,
		}
	}
	adaptCfg := adapt.Config{Enable: true, Scorer: arts.DisScorer}

	fmt.Fprintf(os.Stderr,
		"soaking %d arrivals at %.1f q/s (%.2fx capacity), drift ramp 1.0->%.2f over [%v, %v], frozen profiles...\n",
		n, rate, *rateFactor, *driftFactor, rampStart, rampEnd)
	frozenRecs, _ := sim.RunStats(simCfg(adapt.Config{}), tr, arts.Serve)
	fmt.Fprintln(os.Stderr, "soaking the identical trace with adaptation on...")
	adaptRecs, _, snap := sim.RunAdapt(simCfg(adaptCfg), tr, arts.Serve)

	rep := report{
		Schema:         "schemble-drift/v1",
		Go:             runtime.Version(),
		Quick:          *quick,
		CapacityPerSec: capacity,
		OfferedRate:    rate,
		HorizonSec:     horizon.Seconds(),
		Arrivals:       n,
		DriftFactor:    *driftFactor,
		RampStartSec:   rampStart.Seconds(),
		RampEndSec:     rampEnd.Seconds(),
		Frozen:         summarizeRun(frozenRecs, horizon),
		Adapt:          summarizeRun(adaptRecs, horizon),
	}
	if snap != nil {
		rep.Inflation = make([]float64, len(snap.Models))
		for k, m := range snap.Models {
			rep.Inflation[k] = m.Inflation
		}
		rep.LatencyEvents = snap.LatencyEvents
		rep.ScoreEvents = snap.ScoreEvents
		rep.RecalEpochs = snap.RecalEpochs
		rep.RecalSwaps = snap.RecalSwaps
	}
	fmt.Fprintf(os.Stderr,
		"frozen: %.1f served/s dmr %.3f acc %.3f\nadapt:  %.1f served/s dmr %.3f acc %.3f (inflation %v, %d drift events, %d/%d recal swaps)\n",
		rep.Frozen.ServedPerSec, rep.Frozen.DMR, rep.Frozen.Accuracy,
		rep.Adapt.ServedPerSec, rep.Adapt.DMR, rep.Adapt.Accuracy,
		rep.Inflation, rep.LatencyEvents+rep.ScoreEvents, rep.RecalSwaps, rep.RecalEpochs)

	failed := false
	if rep.Adapt.DMR >= rep.Frozen.DMR {
		fmt.Fprintf(os.Stderr, "FAIL: adapt-on DMR %.3f not below frozen reference %.3f\n",
			rep.Adapt.DMR, rep.Frozen.DMR)
		failed = true
	}

	// Regression gate against a committed baseline (read before -out is
	// rewritten, so both may name the same file).
	if *baselinePath != "" {
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var base report
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "baseline %s unreadable: %v\n", *baselinePath, err)
			} else if rep.Adapt.DMR > base.Adapt.DMR+*maxDMRRise {
				fmt.Fprintf(os.Stderr, "FAIL: adapt-on DMR regressed %.3f -> %.3f (tolerance %.3f)\n",
					base.Adapt.DMR, rep.Adapt.DMR, *maxDMRRise)
				failed = true
			}
		} else {
			fmt.Fprintf(os.Stderr, "no baseline at %s; skipping regression gate\n", *baselinePath)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
