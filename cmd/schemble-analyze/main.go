// Command schemble-analyze summarizes a serving-session record log
// (the JSONL format the simulator and cmd/schemble-replay emit): overall
// accuracy/DMR/latency, per-segment breakdown, and the executed-subset
// histogram.
//
//	schemble-replay -rate 40 -out run.jsonl
//	schemble-analyze -in run.jsonl -segment 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/metrics"
)

func main() {
	in := flag.String("in", "", "record log to analyze (JSONL; - for stdin)")
	segment := flag.Duration("segment", 0, "per-segment breakdown width (0 = off)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "analyze: -in is required")
		os.Exit(2)
	}
	f := os.Stdin
	if *in != "-" {
		var err error
		if f, err = os.Open(*in); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	recs, err := metrics.ReadJSONL(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "analyze: no records")
		os.Exit(1)
	}

	s := metrics.Summarize(recs)
	fmt.Printf("queries: %d  accuracy: %.1f%%  DMR: %.1f%%  processed: %.1f%%\n",
		s.N, 100*s.Accuracy, 100*s.DMR, 100*s.Processed)
	if s.Degraded > 0 || s.Rejected > 0 {
		fmt.Printf("degraded: %d (%.1f%%)  rejected: %d (%.1f%%)\n",
			s.Degraded, 100*s.DegradedRate, s.Rejected, 100*s.RejectedRate)
	}
	fmt.Printf("latency: mean %v  p95 %v  max %v  mean|s|: %.2f\n",
		s.LatMean.Round(time.Millisecond), s.LatP95.Round(time.Millisecond),
		s.LatMax.Round(time.Millisecond), s.MeanSubsetSize)

	fmt.Println("\nexecuted subsets:")
	hist := metrics.SubsetHistogram(recs)
	subs := make([]ensemble.Subset, 0, len(hist))
	for sub := range hist {
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(a, b int) bool { return hist[subs[a]] > hist[subs[b]] })
	for _, sub := range subs {
		fmt.Printf("  %-10s %6d (%.1f%%)\n", sub, hist[sub],
			100*float64(hist[sub])/float64(s.N))
	}

	if *segment > 0 {
		horizon := recs[len(recs)-1].Arrival
		fmt.Printf("\nper-%v segments:\n", *segment)
		fmt.Printf("%10s %8s %8s %8s %10s\n", "start", "queries", "acc(%)", "dmr(%)", "mean lat")
		for i, seg := range metrics.Segment(recs, *segment, horizon) {
			if seg.N == 0 {
				continue
			}
			fmt.Printf("%10v %8d %8.1f %8.1f %10v\n",
				time.Duration(i)*(*segment), seg.N,
				100*seg.Accuracy, 100*seg.DMR, seg.LatMean.Round(time.Millisecond))
		}
	}
}
