// Command schemble-bench measures the scheduler hot path and emits the
// machine-readable BENCH_dp.json trajectory file tracked by the ROADMAP.
//
// It runs two kinds of measurements:
//
//   - Micro-benchmarks of the scheduling kernel itself (via
//     testing.Benchmark): the arena DP on its maximal-reuse steady state,
//     the arena DP forced to re-solve from scratch every call, the frozen
//     pre-arena ReferenceDP (the in-file baseline the speedup fields are
//     relative to), and the Greedy baseline.
//   - A high-arrival-rate soak of the real internal/serve runtime over a
//     fitted text-matching pipeline, reporting served queries per virtual
//     second under a compressed TimeScale.
//
// Usage:
//
//	schemble-bench [-quick] [-out BENCH_dp.json]
//	               [-baseline BENCH_dp.json] [-max-regress 0.25]
//
// -quick shrinks the soak and pipeline fit for CI. When -baseline names
// an existing result file, the run fails (exit 1) if any micro
// benchmark's ns/decision regresses more than -max-regress against it;
// the baseline is read before -out is written, so both may name the same
// file. The output deliberately contains no wall-clock timestamps: two
// runs of the same tree on the same machine should produce comparable
// files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"schemble"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/rng"
)

// report is the BENCH_*.json schema ("schemble-bench/v1").
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Quick  bool   `json:"quick"`
	// Micro benchmarks of Scheduler.Schedule; one decision = one call.
	Micro []microResult `json:"micro"`
	// BaselineName names the Micro entry the speedups are relative to.
	BaselineName string `json:"baseline_name"`
	// SpeedupSteady is reference ns/decision over the steady-state
	// (maximal reuse) ns/decision; SpeedupResolve the same for the
	// forced full re-solve.
	SpeedupSteady  float64     `json:"speedup_steady_vs_reference"`
	SpeedupResolve float64     `json:"speedup_resolve_vs_reference"`
	Soak           *soakResult `json:"soak,omitempty"`
}

type microResult struct {
	Name            string  `json:"name"`
	NsPerDecision   float64 `json:"ns_per_decision"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

type soakResult struct {
	Queries             int     `json:"queries"`
	RatePerSec          float64 `json:"rate_per_sec"`
	TimeScale           float64 `json:"time_scale"`
	DeadlineMs          float64 `json:"deadline_ms"`
	Served              uint64  `json:"served"`
	Degraded            uint64  `json:"degraded"`
	Missed              uint64  `json:"missed"`
	Rejected            uint64  `json:"rejected"`
	ServedPerVirtualSec float64 `json:"served_per_virtual_sec"`
	VirtualSeconds      float64 `json:"virtual_seconds"`
}

// benchRewarder mirrors the diminishing-marginal-utility reward used by
// the repo's micro-benchmarks in bench_test.go.
type benchRewarder struct{ m int }

func (r benchRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	u := 1.0
	sc := 0.2 + 0.6*score
	for i := 0; i < s.Size(); i++ {
		u *= sc
	}
	return 1 - u
}

// benchInstance builds a scheduling instance with n buffered queries over
// m models (same generator as bench_test.go).
func benchInstance(n, m int, seed uint64) ([]core.QueryInfo, core.Capacity, []time.Duration) {
	src := rng.New(seed)
	queries := make([]core.QueryInfo, n)
	for i := range queries {
		queries[i] = core.QueryInfo{
			ID:       i,
			Arrival:  time.Duration(src.Intn(50)) * time.Millisecond,
			Deadline: time.Duration(100+src.Intn(200)) * time.Millisecond,
			Score:    src.Float64(),
		}
	}
	avail := make([]time.Duration, m)
	exec := make([]time.Duration, m)
	for k := range exec {
		avail[k] = time.Duration(src.Intn(40)) * time.Millisecond
		exec[k] = time.Duration(20+src.Intn(70)) * time.Millisecond
	}
	return queries, core.SingleReplica(avail), exec
}

// measure runs f under testing.Benchmark and converts the result.
func measure(name string, f func(b *testing.B)) microResult {
	r := testing.Benchmark(f)
	ns := float64(r.NsPerOp())
	per := 0.0
	if ns > 0 {
		per = 1e9 / ns
	}
	return microResult{
		Name:            name,
		NsPerDecision:   ns,
		DecisionsPerSec: per,
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
	}
}

func runMicro() []microResult {
	const n, m = 8, 3
	qA, capA, execA := benchInstance(n, m, 42)
	qB, capB, execB := benchInstance(n, m, 43)
	rw := benchRewarder{m}

	steadyDP := &core.DP{Delta: 0.01}
	resolveDP := &core.DP{Delta: 0.01}
	refDP := &core.ReferenceDP{Delta: 0.01}
	greedy := &core.Greedy{Order: core.EDF}
	// Warm the arenas so the measured window is the steady state.
	for i := 0; i < 4; i++ {
		steadyDP.Schedule(0, qA, capA, execA, rw)
		resolveDP.Schedule(0, qA, capA, execA, rw)
		resolveDP.Schedule(0, qB, capB, execB, rw)
		greedy.Schedule(0, qA, capA, execA, rw)
	}

	return []microResult{
		// Maximal reuse: the queue and capacity are unchanged between
		// calls, so the DP answers from its retained frontier tables.
		measure("dp/steady-reuse", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steadyDP.Schedule(0, qA, capA, execA, rw)
			}
		}),
		// Forced re-solve: alternating instances defeat prefix reuse, so
		// every call rebuilds all tables (on a warm arena).
		measure("dp/resolve", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					resolveDP.Schedule(0, qA, capA, execA, rw)
				} else {
					resolveDP.Schedule(0, qB, capB, execB, rw)
				}
			}
		}),
		// The frozen pre-arena implementation on the same alternating
		// inputs: the in-file baseline (it re-solves every call whether
		// or not inputs repeat, so alternation only keeps the workload
		// identical to dp/resolve's).
		measure("dp/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					refDP.Schedule(0, qA, capA, execA, rw)
				} else {
					refDP.Schedule(0, qB, capB, execB, rw)
				}
			}
		}),
		measure("greedy/edf", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				greedy.Schedule(0, qA, capA, execA, rw)
			}
		}),
	}
}

func runSoak(quick bool) (*soakResult, error) {
	nQueries, nData, epochs := 3000, 2000, 60
	if quick {
		nQueries, nData, epochs = 400, 600, 20
	}
	// 80/s overruns the fastest model's single-replica capacity (20ms =>
	// 50/s), so the scheduler must triage by difficulty instead of
	// serving everything — the regime the paper targets — while enough
	// queries remain feasible for served/virtual-sec to be a signal.
	const (
		rate     = 80.0 // virtual arrivals per second
		scale    = 0.05 // 20x time compression
		deadline = 150 * time.Millisecond
	)
	ds := dataset.TextMatching(dataset.Config{N: nData, Seed: 7})
	fw := schemble.New(schemble.Config{
		Dataset:         ds,
		Models:          model.TextMatchingModels(7),
		PredictorEpochs: epochs,
		Seed:            7,
	})
	tr := fw.PoissonTrace(rate, nQueries, deadline, 1)
	pool := fw.ServingPool()
	srv := fw.NewServer(schemble.ServerOptions{TimeScale: scale})
	srv.Start(context.Background())
	start := time.Now()
	chans := make([]<-chan schemble.ServeResult, 0, len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		if d := time.Duration(float64(a.At)*scale) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		chans = append(chans, srv.Submit(pool[a.SampleIdx], a.Deadline-a.At))
	}
	for _, ch := range chans {
		<-ch
	}
	virtualSec := time.Since(start).Seconds() / scale
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("soak drain: %w", err)
	}
	st := srv.Stats()
	return &soakResult{
		Queries:             nQueries,
		RatePerSec:          rate,
		TimeScale:           scale,
		DeadlineMs:          float64(deadline) / float64(time.Millisecond),
		Served:              st.Served,
		Degraded:            st.Degraded,
		Missed:              st.Missed,
		Rejected:            st.Rejected,
		ServedPerVirtualSec: float64(st.Served+st.Degraded) / virtualSec,
		VirtualSeconds:      virtualSec,
	}, nil
}

// checkRegression compares micro results by name against a baseline file
// and returns the violations.
func checkRegression(baseline report, micro []microResult, maxRegress float64) []string {
	old := make(map[string]float64, len(baseline.Micro))
	for _, m := range baseline.Micro {
		old[m.Name] = m.NsPerDecision
	}
	var bad []string
	for _, m := range micro {
		prev, ok := old[m.Name]
		if !ok || prev <= 0 {
			continue
		}
		if m.NsPerDecision > prev*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/decision vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
				m.Name, m.NsPerDecision, prev, 100*(m.NsPerDecision/prev-1), 100*maxRegress))
		}
	}
	return bad
}

func find(micro []microResult, name string) (microResult, bool) {
	for _, m := range micro {
		if m.Name == name {
			return m, true
		}
	}
	return microResult{}, false
}

func main() {
	quick := flag.Bool("quick", false, "shrink the soak and pipeline fit (CI mode)")
	out := flag.String("out", "BENCH_dp.json", "output file")
	baselinePath := flag.String("baseline", "", "previous BENCH_*.json to gate ns/decision regressions against")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/decision regression vs -baseline")
	noSoak := flag.Bool("no-soak", false, "skip the serve-runtime soak (micro benchmarks only)")
	flag.Parse()

	// Read the baseline before writing anything: -baseline and -out may
	// name the same file.
	var baseline *report
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schemble-bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		baseline = &report{}
		if err := json.Unmarshal(raw, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "schemble-bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
	}

	rep := report{
		Schema:       "schemble-bench/v1",
		Go:           runtime.Version(),
		Quick:        *quick,
		Micro:        runMicro(),
		BaselineName: "dp/reference",
	}
	ref, _ := find(rep.Micro, "dp/reference")
	if steady, ok := find(rep.Micro, "dp/steady-reuse"); ok && steady.NsPerDecision > 0 {
		rep.SpeedupSteady = ref.NsPerDecision / steady.NsPerDecision
	}
	if resolve, ok := find(rep.Micro, "dp/resolve"); ok && resolve.NsPerDecision > 0 {
		rep.SpeedupResolve = ref.NsPerDecision / resolve.NsPerDecision
	}
	for _, m := range rep.Micro {
		fmt.Printf("%-18s %12.1f ns/decision %14.0f decisions/sec %4d allocs/op %6d B/op\n",
			m.Name, m.NsPerDecision, m.DecisionsPerSec, m.AllocsPerOp, m.BytesPerOp)
	}
	fmt.Printf("speedup vs %s: steady %.2fx, resolve %.2fx\n",
		rep.BaselineName, rep.SpeedupSteady, rep.SpeedupResolve)

	if !*noSoak {
		soak, err := runSoak(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schemble-bench: %v\n", err)
			os.Exit(1)
		}
		rep.Soak = soak
		fmt.Printf("soak: %d queries @ %.0f/s virtual -> %.0f served/virtual-sec (served %d, degraded %d, missed %d, rejected %d)\n",
			soak.Queries, soak.RatePerSec, soak.ServedPerVirtualSec,
			soak.Served, soak.Degraded, soak.Missed, soak.Rejected)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemble-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "schemble-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if baseline != nil {
		if bad := checkRegression(*baseline, rep.Micro, *maxRegress); len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "schemble-bench: ns/decision regression vs baseline:")
			for _, b := range bad {
				fmt.Fprintln(os.Stderr, "  "+b)
			}
			os.Exit(1)
		}
		fmt.Printf("no ns/decision regression vs %s (limit +%.0f%%)\n", *baselinePath, 100**maxRegress)
	}
}
