// Command schemble-server exposes a fitted Schemble deployment over HTTP.
// Model execution is simulated (optionally time-compressed), but requests
// traverse the real concurrent scheduler, so clients observe genuine
// queueing, subset selection and deadline behaviour.
//
//	schemble-server -addr :8080 -timescale 0.1 &
//	curl -s localhost:8080/v1/predict -d '{"sample_id": 5, "deadline_ms": 150}'
//	curl -s localhost:8080/v1/stats
//
// With -snapshot the fitted pipeline is cached on disk, so restarts skip
// profiling and predictor training.
//
// Observability: -trace-buffer keeps the last N decision traces for
// GET /v1/trace and feeds the latency histograms behind GET /v1/metrics;
// -trace-log streams every trace to a JSONL serving log that
// schemble-analyze reads; -pprof-addr serves net/http/pprof on a side
// listener kept off the public API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"schemble/internal/adapt"
	"schemble/internal/cluster"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/httpserve"
	"schemble/internal/model"
	"schemble/internal/obsv"
	"schemble/internal/pipeline"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/serve"
)

// parseClasses turns the -classes flag into request classes. The format is
// a comma list of name:priority:deadline[:weight] entries, e.g.
// "gold:2:300ms:3,bronze:0:1s:1"; weight defaults to 1.
func parseClasses(s string) ([]serve.Class, error) {
	if s == "" {
		return nil, nil
	}
	var out []serve.Class
	for i, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("entry %d (%q): want name:priority:deadline[:weight]", i, entry)
		}
		c := serve.Class{Name: parts[0], Weight: 1}
		if c.Name == "" {
			return nil, fmt.Errorf("entry %d: empty class name", i)
		}
		pr, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("entry %d (%q): bad priority: %v", i, entry, err)
		}
		c.Priority = pr
		if c.Deadline, err = time.ParseDuration(parts[2]); err != nil {
			return nil, fmt.Errorf("entry %d (%q): bad deadline: %v", i, entry, err)
		}
		if len(parts) == 4 {
			if c.Weight, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("entry %d (%q): bad weight: %v", i, entry, err)
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// parseReplicas turns the -replicas flag into a per-model pool-size
// vector: empty means nil (one replica each), a single integer applies to
// every model, and a comma list must name every model in order.
func parseReplicas(s string, m int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("entry %d (%q) is not an integer", i, p)
		}
		if v < 1 {
			return nil, fmt.Errorf("entry %d (%d) must be >= 1", i, v)
		}
		vals[i] = v
	}
	if len(vals) == 1 {
		out := make([]int, m)
		for i := range out {
			out[i] = vals[0]
		}
		return out, nil
	}
	if len(vals) != m {
		return nil, fmt.Errorf("got %d entries, deployment has %d models", len(vals), m)
	}
	return vals, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timescale := flag.Float64("timescale", 0.1, "wall-clock compression for simulated model latencies")
	seed := flag.Uint64("seed", 7, "deployment seed")
	snapshot := flag.String("snapshot", "", "path to cache the fitted pipeline (empty = refit on every start)")
	queueDepth := flag.Int("queuedepth", 0, "per-model task queue bound (0 = default 1024); full queues reject instead of blocking")
	replicasFlag := flag.String("replicas", "", "replica-pool sizes: one int for every model (e.g. 4) or a comma list per model (e.g. 1,2,4); empty = 1 each")
	batchMax := flag.Int("batch", 0, "micro-batch cap per replica (0 or 1 disables batching)")
	batchLinger := flag.Duration("batch-linger", 0, "longest a forming batch waits for stragglers once the queue is empty, in virtual time")
	batchMarginal := flag.Float64("batch-marginal", 0, "incremental cost of one extra batched item as a fraction of single-item latency (0 = default 0.15)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful-shutdown grace period for committed in-flight work")
	faultRate := flag.Float64("fault-rate", 0, "chaos: probability a task attempt fails transiently (0 = off)")
	stragglerRate := flag.Float64("straggler-rate", 0, "chaos: probability a task attempt straggles at 8x latency (0 = off)")
	crashMTBF := flag.Duration("crash-mtbf", 0, "chaos: mean time between replica crashes in virtual time (0 = off)")
	classesFlag := flag.String("classes", "", "request classes as name:priority:deadline[:weight],... (e.g. gold:2:300ms:3,bronze:0:1s); empty = classless")
	admCapacity := flag.Float64("admission-capacity", 0, "admission-controller capacity in queries per virtual second (0 = derive from the bottleneck model)")
	admTarget := flag.Duration("admission-target", 0, "backlog drain-time target in virtual time; load 1.0 means the backlog drains in exactly this long (0 = default 500ms)")
	cacheOn := flag.Bool("cache", false, "enable the difficulty-gated result cache")
	cacheSize := flag.Int("cache-size", 1024, "cache: entry capacity (LRU beyond it)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache: entry lifetime in virtual time (0 = never expires)")
	cacheDifficultyMax := flag.Float64("cache-difficulty-max", 0.5, "cache: only queries with difficulty score <= this are cacheable")
	cacheRegions := flag.Int("cache-regions", 64, "cache: k-means centroids keying the feature space")
	adaptOn := flag.Bool("adapt", false, "enable online adaptation: live latency profiles feed the cost model and hedging, drift detection, score recalibration")
	adaptQuantile := flag.Float64("adapt-quantile", 0, "adapt: latency-sketch quantile the cost model plans with (0 = default 0.9)")
	adaptMinSamples := flag.Int("adapt-min-samples", 0, "adapt: observations per model before inflation engages (0 = default 32)")
	adaptDriftWindow := flag.Duration("adapt-drift-window", 0, "adapt: drift-detector window in virtual time (0 = default 2s)")
	adaptRecalEpoch := flag.Duration("adapt-recal-epoch", 0, "adapt: recalibration refit period in virtual time (0 = default 5s)")
	traceBuffer := flag.Int("trace-buffer", 512, "decision traces kept for /v1/trace (0 disables tracing and the latency histograms)")
	traceLog := flag.String("trace-log", "", "append decision traces as JSONL serving-log records to this file (implies observability on)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this side listener (empty = off)")
	quick := flag.Bool("quick", false, "fit a small pipeline for smoke tests (seconds instead of minutes)")
	flag.Parse()

	cfg := pipeline.Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 4000, Seed: *seed}),
		Models:  model.TextMatchingModels(*seed),
		Seed:    *seed,
	}
	if *quick {
		cfg.Dataset = dataset.TextMatching(dataset.Config{N: 1200, Seed: *seed})
		cfg.PredictorEpochs = 25
	}
	var arts *pipeline.Artifacts
	if *snapshot != "" {
		if a, err := pipeline.LoadFile(cfg, *snapshot); err == nil {
			fmt.Fprintf(os.Stderr, "restored fitted pipeline from %s\n", *snapshot)
			arts = a
		}
	}
	if arts == nil {
		fmt.Fprintln(os.Stderr, "fitting pipeline (profiling + predictor training)...")
		arts = pipeline.Build(cfg)
		if *snapshot != "" {
			if err := arts.SaveFile(*snapshot); err != nil {
				fmt.Fprintf(os.Stderr, "warning: could not save snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "saved fitted pipeline to %s\n", *snapshot)
			}
		}
	}

	obsCfg := obsv.Config{TraceBuffer: *traceBuffer}
	var closeSink func() (uint64, error)
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot open trace log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		obsCfg.Sink, closeSink = obsv.NewJSONLSink(f)
		fmt.Fprintf(os.Stderr, "streaming decision traces to %s\n", *traceLog)
	}

	if *pprofAddr != "" {
		// Profiling stays on a side listener so the public API surface is
		// unchanged; the blank pprof import registered its handlers on
		// http.DefaultServeMux.
		go func() {
			fmt.Fprintf(os.Stderr, "pprof on %s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
	}

	faults := model.FaultConfig{
		TransientRate: *faultRate,
		StragglerRate: *stragglerRate,
		CrashMTBF:     *crashMTBF,
		Seed:          *seed,
	}
	replicas, err := parseReplicas(*replicasFlag, arts.Ensemble.M())
	if err != nil {
		fmt.Fprintf(os.Stderr, "-replicas: %v\n", err)
		os.Exit(2)
	}
	classes, err := parseClasses(*classesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-classes: %v\n", err)
		os.Exit(2)
	}
	var cacheCfg rcache.Config
	if *cacheOn {
		// Key the cache off a fresh k-means fit over the serving pool's
		// feature space: samples landing in the same centroid share answers.
		points := make([][]float64, len(arts.Serve))
		for i, s := range arts.Serve {
			points[i] = s.Features
		}
		km, err := cluster.Fit(points, *cacheRegions, 30, rng.New(*seed^0xcac4e))
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cache: fitting keyer: %v\n", err)
			os.Exit(1)
		}
		cacheCfg = rcache.Config{
			Keyer:         rcache.CentroidKeyer{KM: km},
			Capacity:      *cacheSize,
			TTL:           *cacheTTL,
			DifficultyMax: *cacheDifficultyMax,
		}
		fmt.Fprintf(os.Stderr,
			"result cache: %d centroids, capacity %d, ttl %v, difficulty-max %.2f\n",
			km.K(), *cacheSize, *cacheTTL, *cacheDifficultyMax)
	}
	var adaptCfg adapt.Config
	if *adaptOn {
		adaptCfg = adapt.Config{
			Enable:       true,
			CostQuantile: *adaptQuantile,
			MinSamples:   uint64(*adaptMinSamples),
			DriftWindow:  *adaptDriftWindow,
			RecalEpoch:   *adaptRecalEpoch,
			// The pipeline's discrepancy scorer grades served outcomes so
			// the predictor's calibration can track the workload.
			Scorer: arts.DisScorer,
		}
		// Log the resolved settings, not the zero sentinels the flags use.
		q, ms, dw, re := *adaptQuantile, *adaptMinSamples, *adaptDriftWindow, *adaptRecalEpoch
		if q == 0 { //schemble:floateq-ok zero is the flag's explicit "use the default" sentinel
			q = 0.9
		}
		if ms == 0 {
			ms = 32
		}
		if dw == 0 {
			dw = 2 * time.Second
		}
		if re == 0 {
			re = 5 * time.Second
		}
		fmt.Fprintf(os.Stderr,
			"online adaptation: quantile %.2f, min-samples %d, drift-window %v, recal-epoch %v\n",
			q, ms, dw, re)
	}
	rt := serve.New(serve.Config{
		Ensemble:   arts.Ensemble,
		Scheduler:  &core.DP{Delta: 0.01},
		Rewarder:   arts.Profile,
		Estimator:  arts.Predictor,
		TimeScale:  *timescale,
		QueueDepth: *queueDepth,
		Replicas:   replicas,
		Batching: serve.BatchConfig{
			MaxBatch:  *batchMax,
			MaxLinger: *batchLinger,
			Curve:     model.BatchCurve{Marginal: *batchMarginal},
		},
		Classes:   classes,
		Admission: serve.AdmissionConfig{Capacity: *admCapacity, Target: *admTarget},
		Cache:     cacheCfg,
		Adapt:     adaptCfg,
		Seed:      *seed,
		Faults:    faults,
		// Mitigations stay on even without injection: they also cover
		// panics and real stragglers, and degrade at the deadline instead
		// of missing outright.
		Tolerance: serve.DefaultTolerance(),
		Obs:       obsCfg,
	})
	if faults.Enabled() {
		fmt.Fprintf(os.Stderr,
			"chaos enabled: fault-rate=%.3f straggler-rate=%.3f crash-mtbf=%v\n",
			*faultRate, *stragglerRate, *crashMTBF)
	}
	if replicas != nil || *batchMax > 1 {
		fmt.Fprintf(os.Stderr, "replica pools: %v  micro-batching: max=%d linger=%v\n",
			replicas, *batchMax, *batchLinger)
	}
	if len(classes) > 0 {
		names := make([]string, len(classes))
		for i, c := range classes {
			names[i] = fmt.Sprintf("%s(p%d,%v)", c.Name, c.Priority, c.Deadline)
		}
		fmt.Fprintf(os.Stderr, "request classes: %s\n", strings.Join(names, " "))
	}
	h := httpserve.New(httpserve.Config{
		Server:    rt,
		Estimator: arts.Predictor,
		Pool:      arts.Serve,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: h}
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down: draining committed work...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := rt.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain cut short: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			httpSrv.Close()
		}
	}()

	fmt.Fprintf(os.Stderr, "serving %d-sample pool on %s (timescale %.2f)\n",
		len(arts.Serve), *addr, *timescale)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-idle
	h.Close()
	if closeSink != nil {
		if dropped, err := closeSink(); err != nil {
			fmt.Fprintf(os.Stderr, "trace log: %v\n", err)
		} else if dropped > 0 {
			fmt.Fprintf(os.Stderr, "trace log: %d traces dropped under backpressure\n", dropped)
		}
	}
	st := rt.Stats()
	fmt.Fprintf(os.Stderr,
		"final runtime stats: submitted=%d served=%d degraded=%d missed=%d rejected=%d\n",
		st.Submitted, st.Served, st.Degraded, st.Missed, st.Rejected)
}
