// Command schemble-serve runs the real-time concurrent serving runtime on
// a generated workload, streaming per-second statistics. Model latencies
// are simulated but execute on real goroutines with real channel dispatch,
// so the output shows live Schemble behaviour under a burst.
//
// Usage:
//
//	schemble-serve -rate 40 -n 2000 -deadline 150ms -timescale 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"schemble"
)

func main() {
	rate := flag.Float64("rate", 40, "arrivals per (virtual) second")
	n := flag.Int("n", 2000, "number of queries")
	deadline := flag.Duration("deadline", 150*time.Millisecond, "per-query deadline")
	timescale := flag.Float64("timescale", 0.1, "wall-clock compression (0.1 = 10x faster)")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "fitting pipeline (text matching, 3-model ensemble)...")
	ds, models := schemble.TextMatchingBench(*seed)
	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: *seed})
	tr := fw.PoissonTrace(*rate, *n, *deadline, 1)
	pool := fw.ServingPool()

	srv := fw.NewServer(schemble.ServerOptions{TimeScale: *timescale})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	defer srv.Stop()

	var (
		mu                    sync.Mutex
		done, missed, correct int
		sizeSum               int
	)
	var wg sync.WaitGroup
	refs := fw.Artifacts().Refs
	scorer := fw.Artifacts().Scorer

	start := time.Now()
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for range ticker.C {
			mu.Lock()
			d, m, c, sz := done, missed, correct, sizeSum
			mu.Unlock()
			total := d + m
			if total == 0 {
				continue
			}
			fmt.Printf("[%5.1fs] served=%d missed=%d DMR=%.1f%% acc=%.1f%% mean|s|=%.2f\n",
				time.Since(start).Seconds(), d, m,
				100*float64(m)/float64(total),
				100*float64(c)/float64(total),
				float64(sz)/float64(max(d, 1)))
		}
	}()

	for i, a := range tr.Arrivals {
		// Replay arrival gaps in compressed wall time.
		target := time.Duration(float64(a.At) * *timescale)
		if sleep := target - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		s := pool[a.SampleIdx]
		ch := srv.Submit(s, *deadline)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := <-ch
			mu.Lock()
			defer mu.Unlock()
			if res.Missed {
				missed++
				return
			}
			done++
			sizeSum += res.Subset.Size()
			if scorer.Score(res.Output, refs[s.ID]) > 0.5 {
				correct++
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	total := done + missed
	fmt.Printf("\nfinal: %d queries, DMR %.1f%%, accuracy %.1f%%\n",
		total, 100*float64(missed)/float64(total), 100*float64(correct)/float64(total))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
