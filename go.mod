module schemble

go 1.22
