// Package schemble is the public facade of the Schemble reproduction: a
// query difficulty-dependent task scheduling framework for efficient deep
// ensemble inference under deadlines (Li et al., ICDE 2023).
//
// A Framework bundles a fitted deployment — base models, aggregator,
// discrepancy-score predictor, per-bin subset reward profile and the DP
// task scheduler — behind a small API:
//
//	ds, models := schemble.TextMatchingBench(42)
//	fw := schemble.New(schemble.Config{Dataset: ds, Models: models, Seed: 42})
//
//	// Offline: full-ensemble inference and difficulty estimation.
//	out := fw.PredictFull(ds.Samples[0])
//	score := fw.Difficulty(ds.Samples[0])
//
//	// Deterministic serving simulation of a traffic trace.
//	tr := fw.PoissonTrace(40, 2000, 150*time.Millisecond, 1)
//	summary, _ := fw.Simulate(schemble.SimOptions{Trace: tr})
//
//	// Real-time concurrent serving.
//	srv := fw.NewServer(schemble.ServerOptions{TimeScale: 0.1})
//	srv.Start(ctx)
//	res := <-srv.Submit(ds.Samples[0], 150*time.Millisecond)
//
// The heavy lifting lives in internal packages (core: the DP scheduler;
// discrepancy, profiling, sim, serve, ...); this package wires them
// together and re-exports the vocabulary types.
package schemble

import (
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/serve"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// Re-exported vocabulary types. The aliases keep one set of types across
// the public facade and the internal packages.
type (
	// Dataset is a generated workload.
	Dataset = dataset.Dataset
	// Sample is one query-able input.
	Sample = dataset.Sample
	// Model is a deployable base model.
	Model = model.Model
	// Output is a model's (or the ensemble's) prediction.
	Output = model.Output
	// Subset is a set of base-model indices.
	Subset = ensemble.Subset
	// Record is one query's serving outcome.
	Record = metrics.Record
	// Summary aggregates serving records.
	Summary = metrics.Summary
	// Trace is an arrival sequence.
	Trace = trace.Trace
	// Server is the real-time concurrent serving runtime.
	Server = serve.Server
	// ServeResult is a Server's per-request outcome.
	ServeResult = serve.Result
	// ServerStats is a Server's point-in-time health snapshot.
	ServerStats = serve.Stats
)

// Config configures New.
type Config struct {
	// Dataset and Models define the deployment; both are required.
	Dataset *Dataset
	Models  []Model
	// Aggregator defaults to weighted averaging.
	Aggregator ensemble.Aggregator
	// Delta is the DP reward quantization step (default 0.01, the paper's
	// recommended value).
	Delta float64
	// PredictorEpochs tunes the discrepancy predictor's training budget
	// (default 150).
	PredictorEpochs int
	Seed            uint64
}

// Framework is a fitted Schemble deployment.
type Framework struct {
	arts  *pipeline.Artifacts
	delta float64
	seed  uint64
}

// New fits the full pipeline: precomputes ensemble outputs, fits
// calibration + the discrepancy scorer, trains the predictor, and profiles
// subset rewards.
func New(cfg Config) *Framework {
	delta := cfg.Delta
	if delta <= 0 {
		delta = 0.01
	}
	arts := pipeline.Build(pipeline.Config{
		Dataset:         cfg.Dataset,
		Models:          cfg.Models,
		Aggregator:      cfg.Aggregator,
		PredictorEpochs: cfg.PredictorEpochs,
		Seed:            cfg.Seed,
	})
	return &Framework{arts: arts, delta: delta, seed: cfg.Seed}
}

// Artifacts exposes the fitted internals for advanced use.
func (f *Framework) Artifacts() *pipeline.Artifacts { return f.arts }

// PredictFull runs the complete ensemble on s.
func (f *Framework) PredictFull(s *Sample) Output {
	return f.arts.Ensemble.PredictFull(s)
}

// PredictSubset runs only the models in sub.
func (f *Framework) PredictSubset(s *Sample, sub Subset) Output {
	return f.arts.Ensemble.PredictSubset(s, sub)
}

// Difficulty estimates the discrepancy score of s in [0,1] with the
// trained lightweight predictor (no base model runs).
func (f *Framework) Difficulty(s *Sample) float64 {
	return f.arts.Predictor.Predict(s)
}

// Reward returns the profiled expected accuracy of executing sub on a
// query with the given difficulty score.
func (f *Framework) Reward(score float64, sub Subset) float64 {
	return f.arts.Profile.Reward(score, sub)
}

// BestSubset returns the cheapest subset within tolerance of the best
// profiled reward at the given score; tolerance 0 means exact best.
func (f *Framework) BestSubset(score, tolerance float64) Subset {
	subs := ensemble.AllSubsets(f.arts.Ensemble.M())
	best := f.arts.Profile.BestSubsetWithin(score, subs)
	if tolerance <= 0 {
		return best
	}
	bestR := f.arts.Profile.Reward(score, best)
	chosen := best
	for _, s := range subs {
		if f.arts.Profile.Reward(score, s) >= (1-tolerance)*bestR && s.Size() < chosen.Size() {
			chosen = s
		}
	}
	return chosen
}

// ServingPool returns the held-out samples traces should draw from (the
// predictor never saw them during training).
func (f *Framework) ServingPool() []*Sample { return f.arts.Serve }

// PoissonTrace builds constant-rate Poisson traffic over the serving pool
// with a constant relative deadline.
func (f *Framework) PoissonTrace(ratePerSec float64, n int, deadline time.Duration, seed uint64) *Trace {
	return trace.Poisson(trace.PoissonConfig{
		RatePerSec: ratePerSec, N: n, Samples: f.arts.Serve,
		Deadline: trace.ConstantDeadline(deadline), Seed: f.seed + seed,
	})
}

// OneDayTrace builds the diurnal bursty one-day trace over the serving
// pool (hourSeconds compresses each hour; 0 means 8).
func (f *Framework) OneDayTrace(deadline time.Duration, hourSeconds float64, seed uint64) *Trace {
	return trace.OneDay(trace.OneDayConfig{
		Samples:     f.arts.Serve,
		Deadline:    trace.ConstantDeadline(deadline),
		HourSeconds: hourSeconds,
		Seed:        f.seed + seed,
	})
}

// SimOptions configures Simulate.
type SimOptions struct {
	Trace *Trace
	// ForceProcess disables rejection: every query is eventually served
	// and latency is reported instead of misses.
	ForceProcess bool
}

// Simulate replays the trace through the Schemble pipeline (discrepancy
// prediction, DP scheduling, per-model queues) in the deterministic
// discrete-event simulator and returns the aggregate summary plus
// per-query records.
func (f *Framework) Simulate(opt SimOptions) (Summary, []Record) {
	recs := sim.Run(sim.Config{
		Ensemble:     f.arts.Ensemble,
		Refs:         f.arts.Refs,
		Scorer:       f.arts.Scorer,
		Scheduler:    &core.DP{Delta: f.delta},
		Rewarder:     f.arts.Profile,
		Estimator:    f.arts.Predictor,
		ScoreDelay:   f.arts.Predictor.InferCost,
		ForceProcess: opt.ForceProcess,
		Seed:         f.seed,
	}, opt.Trace, f.arts.Serve)
	return metrics.Summarize(recs), recs
}

// SimulateOriginal replays the trace through the unmodified full-ensemble
// pipeline — the paper's Original baseline — for comparison.
func (f *Framework) SimulateOriginal(opt SimOptions) (Summary, []Record) {
	full := f.arts.Ensemble.FullSubset()
	recs := sim.Run(sim.Config{
		Ensemble:     f.arts.Ensemble,
		Refs:         f.arts.Refs,
		Scorer:       f.arts.Scorer,
		Select:       func(*Sample) Subset { return full },
		ForceProcess: opt.ForceProcess,
		Seed:         f.seed,
	}, opt.Trace, f.arts.Serve)
	return metrics.Summarize(recs), recs
}

// ServerOptions configures NewServer.
type ServerOptions struct {
	// TimeScale compresses simulated model latencies (0.1 = 10x faster
	// than real time); 0 means real time.
	TimeScale float64
	// QueueDepth bounds each model's task queue (default 1024). Saturated
	// queues reject requests explicitly instead of blocking or leaking.
	QueueDepth int
}

// NewServer builds the real-time concurrent serving runtime over this
// framework's pipeline. Call Start before Submit. Every submitted request
// resolves exactly once — served, missed, or explicitly rejected — and the
// runtime's health is observable via Server.Stats. Shut down with Stop
// (immediate) or Drain (finishes committed work first).
func (f *Framework) NewServer(opt ServerOptions) *Server {
	return serve.New(serve.Config{
		Ensemble:   f.arts.Ensemble,
		Scheduler:  &core.DP{Delta: f.delta},
		Rewarder:   f.arts.Profile,
		Estimator:  f.arts.Predictor,
		TimeScale:  opt.TimeScale,
		QueueDepth: opt.QueueDepth,
		Seed:       f.seed,
	})
}

// Summarize aggregates records (re-exported for example programs).
func Summarize(recs []Record) Summary { return metrics.Summarize(recs) }

// Save writes the fitted pipeline snapshot to path, so a later process can
// Load it and skip profiling and predictor training.
func (f *Framework) Save(path string) error { return f.arts.SaveFile(path) }

// Load restores a framework from a snapshot written by Save. cfg must
// describe the same dataset, models and seed the snapshot was fitted on.
func Load(cfg Config, path string) (*Framework, error) {
	delta := cfg.Delta
	if delta <= 0 {
		delta = 0.01
	}
	arts, err := pipeline.LoadFile(pipeline.Config{
		Dataset:    cfg.Dataset,
		Models:     cfg.Models,
		Aggregator: cfg.Aggregator,
		Seed:       cfg.Seed,
	}, path)
	if err != nil {
		return nil, err
	}
	return &Framework{arts: arts, delta: delta, seed: cfg.Seed}, nil
}

// TextMatchingBench generates the bank-Q&A benchmark: the synthetic text
// matching dataset and its three-model ensemble (BiLSTM/RoBERTa/BERT
// stand-ins).
func TextMatchingBench(seed uint64) (*Dataset, []Model) {
	return dataset.TextMatching(dataset.Config{N: 4000, Seed: seed}),
		model.TextMatchingModels(seed)
}

// VehicleCountingBench generates the UA-DETRAC-like benchmark: regression
// over video frames with a three-detector ensemble.
func VehicleCountingBench(seed uint64) (*Dataset, []Model) {
	return dataset.VehicleCounting(dataset.Config{N: 4000, Seed: seed}),
		model.VehicleCountingModels(seed)
}

// ImageRetrievalBench generates the R1M-like benchmark: embedding ranking
// with a two-model DELG-like ensemble.
func ImageRetrievalBench(seed uint64) (*Dataset, []Model) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 1600, Seed: seed}, GallerySize: 1200, EmbDim: 16})
	return ds, model.ImageRetrievalModels(seed, 16)
}

// DiscrepancyScore computes the true discrepancy score of s from full base
// outputs (offline; requires running every model). The predictor estimates
// this quantity without any model runs.
func (f *Framework) DiscrepancyScore(s *Sample) float64 {
	outs := f.arts.Ensemble.Outputs(s)
	ref := f.arts.Ensemble.Predict(outs, f.arts.Ensemble.FullSubset())
	return f.arts.DisScorer.Score(outs, ref)
}

var _ discrepancy.ScoreEstimator = (*frameworkEstimator)(nil)

// frameworkEstimator adapts Framework.Difficulty to the internal
// ScoreEstimator interface (used in tests).
type frameworkEstimator struct{ f *Framework }

func (fe frameworkEstimator) Predict(s *dataset.Sample) float64 { return fe.f.Difficulty(s) }
